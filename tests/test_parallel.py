"""Tests for the multi-core execution layer (:mod:`repro.parallel`).

The contract under test everywhere: results are *identical* for every
``workers`` / ``shards`` combination — the serial backend defines the
semantics and the process pool must reproduce them exactly, including
census counts, frequency-of-frequency spectra, and site-draw order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimate import StreamingCensus
from repro.core.permutation import permutations_from_distances
from repro.experiments.harness import (
    permutation_count_trials,
    unique_permutation_count,
)
from repro.metrics import EuclideanDistance, LevenshteinDistance
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    SharedDataset,
    decode_strings,
    get_executor,
    serial_workers,
    shard_ranges,
    sharded_census,
)


@pytest.fixture(scope="module")
def pool():
    """One shared two-worker pool for the whole module (startup amortized)."""
    with ProcessExecutor(2) as executor:
        yield executor


def _square(x):
    return x * x


def _fail(x):
    raise RuntimeError(f"boom {x}")


class TestExecutor:
    def test_worker_spec(self):
        assert serial_workers(None)
        assert serial_workers(0)
        assert serial_workers("serial")
        assert not serial_workers(1)
        with pytest.raises(ValueError):
            serial_workers(-1)
        with pytest.raises(ValueError):
            serial_workers("four")

    def test_get_executor_kinds(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(0), SerialExecutor)
        assert isinstance(get_executor("serial"), SerialExecutor)
        with get_executor(1) as executor:
            assert isinstance(executor, ProcessExecutor)
            assert executor.workers == 1

    def test_serial_map_order(self):
        assert SerialExecutor().map(_square, [(i,) for i in range(7)]) == [
            i * i for i in range(7)
        ]

    def test_pool_map_order(self, pool):
        # More tasks than workers: results must still arrive in task order.
        assert pool.map(_square, [(i,) for i in range(13)]) == [
            i * i for i in range(13)
        ]

    def test_pool_propagates_errors(self, pool):
        with pytest.raises(RuntimeError, match="boom"):
            pool.map(_fail, [(1,)])

    def test_closed_pool_rejects_work(self):
        executor = ProcessExecutor(1)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError):
            executor.map(_square, [(1,)])


def _roundtrip_dataset(points):
    return SharedDataset.publish(points).resolve()


def _resolve_remote(dataset):
    """Worker-side resolution (the owner shortcut is pickled away)."""
    points = dataset.resolve()
    if isinstance(points, np.ndarray):
        return np.asarray(points).copy()
    return list(points)


class TestSharedMemory:
    def test_array_roundtrip_owner(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        shared = SharedArray.publish(array)
        try:
            assert np.array_equal(shared.array(), array)
        finally:
            shared.unlink()
            shared.unlink()  # idempotent

    def test_dataset_kinds(self):
        vectors = np.arange(6, dtype=np.float64).reshape(3, 2)
        with SharedDataset.publish(vectors) as dataset:
            assert dataset.kind == "array"
            assert dataset.resolve() is vectors  # owner shortcut
        words = ["héllo", "", "naïve", "a\x00b"]
        with SharedDataset.publish(words) as dataset:
            assert dataset.kind == "strings"
            assert dataset.resolve() is words
        mixed = [("tuple", 1), ("of", 2)]
        with SharedDataset.publish(mixed) as dataset:
            assert dataset.kind == "pickle"

    def test_worker_side_resolution(self, pool):
        vectors = np.random.default_rng(3).random((20, 3))
        words = ["αβγ", "", "edit", "distance", "a\x00b"]
        mixed = [("t", 1), ("u", 2)]
        for points, check in (
            (vectors, lambda r: np.array_equal(r, vectors)),
            (words, lambda r: r == words),
            (mixed, lambda r: r == mixed),
        ):
            with SharedDataset.publish(points) as dataset:
                [result] = pool.map(_resolve_remote, [(dataset,)])
                assert check(result)

    def test_decode_strings_inverse(self):
        from repro.metrics.encoding import EncodedStrings

        words = ["", "abc", "ααα", "x" * 40, "a\x00"]
        encoded = EncodedStrings.from_strings(words)
        assert decode_strings(encoded.codes, encoded.lengths) == words

    def test_ephemeral_payload_not_cached(self):
        import pickle

        from repro.parallel import sharedmem

        words = ["one", "two", "three"]
        dataset = SharedDataset.publish(words, ephemeral=True)
        try:
            # Simulate the worker side: the owner shortcut is pickled away.
            remote = pickle.loads(pickle.dumps(dataset))
            assert remote.ephemeral
            assert remote.resolve() == words
            token = dataset.arrays[0].name
            assert token not in sharedmem._RESOLVED
            assert token not in sharedmem._ATTACHED
        finally:
            dataset.unlink()

    def test_local_dataset_never_touches_shared_memory(self):
        words = ["serial", "only"]
        dataset = SharedDataset.local(words)
        assert dataset.arrays == []
        assert dataset.resolve() is words
        dataset.unlink()  # no-op
        import pickle

        with pytest.raises(TypeError, match="cannot be shipped"):
            pickle.dumps(dataset)

    def test_serial_census_uses_no_segments(self, monkeypatch, rng):
        # Serial runs must not require /dev/shm at all.
        import repro.parallel.sharedmem as sharedmem

        def forbidden(*args, **kwargs):
            raise AssertionError("serial path allocated shared memory")

        monkeypatch.setattr(
            sharedmem.shared_memory, "SharedMemory", forbidden
        )
        points = rng.random((50, 2))
        sites = [points[0], points[1], points[2]]
        censuses, _ = sharded_census(
            points, sites, EuclideanDistance(), shards=3
        )
        assert censuses[3].total == 50
        trials = permutation_count_trials(
            points, EuclideanDistance(), k=3, n_trials=2,
            rng=np.random.default_rng(1),
        )
        assert len(trials.counts) == 2


class TestShardRanges:
    def test_partition_properties(self):
        for n in (0, 1, 5, 17, 100):
            for shards in (1, 2, 3, 7, 150):
                ranges = shard_ranges(n, shards)
                # Contiguous cover of range(n), no empty shard.
                flat = [i for start, stop in ranges for i in range(start, stop)]
                assert flat == list(range(n))
                assert all(stop > start for start, stop in ranges)
                sizes = [stop - start for start, stop in ranges]
                if sizes:
                    assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_ranges(5, 0)


class TestStreamingCensusMerge:
    def test_merge_equals_whole(self, rng):
        perms = permutations_from_distances(rng.random((200, 5)))
        whole = StreamingCensus()
        whole.update(perms)
        cuts = sorted(rng.choice(199, size=3, replace=False) + 1)
        parts = []
        previous = 0
        for cut in list(cuts) + [200]:
            part = StreamingCensus()
            part.update(perms[previous:cut])
            parts.append(part)
            previous = cut
        merged = StreamingCensus.merged(parts)
        assert merged.distinct == whole.distinct
        assert merged.total == whole.total
        assert (
            merged.frequency_of_frequencies()
            == whole.frequency_of_frequencies()
        )
        assert merged.chao1() == whole.chao1()

    def test_merge_in_place_returns_self(self):
        a, b = StreamingCensus(), StreamingCensus()
        a.update(np.array([[0, 1], [1, 0]]))
        b.update(np.array([[0, 1]]))
        assert a.merge(b) is a
        assert a.total == 3
        assert a.distinct == 2

    def test_merge_self_rejected(self):
        census = StreamingCensus()
        with pytest.raises(ValueError):
            census.merge(census)

    def test_merge_empty_width_batches(self):
        a, b = StreamingCensus(), StreamingCensus()
        a.update(np.empty((3, 0), dtype=np.int64))
        b.update(np.empty((2, 0), dtype=np.int64))
        assert a.merge(b).total == 5
        assert a.distinct == 1


class TestShardedCensus:
    @pytest.fixture(scope="class")
    def vector_data(self):
        rng = np.random.default_rng(42)
        points = rng.random((150, 3))
        sites = [points[i] for i in range(8)]
        return points, sites, EuclideanDistance()

    @pytest.fixture(scope="class")
    def string_data(self):
        rng = np.random.default_rng(43)
        letters = "ab"
        words = [
            "".join(letters[i] for i in rng.integers(0, 2, size=4))
            for _ in range(120)
        ]
        sites = words[:6]
        return words, sites, LevenshteinDistance()

    @pytest.mark.parametrize("fixture", ["vector_data", "string_data"])
    def test_invariance_across_workers_and_shards(
        self, fixture, request, pool
    ):
        points, sites, metric = request.getfixturevalue(fixture)
        ks = [2, len(sites)]
        reference, ref_perms = sharded_census(
            points, sites, metric, ks=ks, collect_permutations=True
        )
        for shards in (1, 4):
            for executor in (None, pool):
                censuses, perms = sharded_census(
                    points, sites, metric, ks=ks, shards=shards,
                    executor=executor, collect_permutations=True,
                )
                for k in ks:
                    assert censuses[k].distinct == reference[k].distinct
                    assert (
                        censuses[k].frequency_of_frequencies()
                        == reference[k].frequency_of_frequencies()
                    )
                assert np.array_equal(perms, ref_perms)

    def test_prefix_is_recomputed_not_sliced(self, vector_data):
        # The permutation of a site prefix is not a prefix of the full
        # permutation; a k-prefix census can never exceed k!.
        points, sites, metric = vector_data
        censuses, _ = sharded_census(
            points, sites, metric, ks=[2, 3], shards=3
        )
        assert censuses[2].distinct <= 2
        assert censuses[3].distinct <= 6

    def test_invalid_prefix_rejected(self, vector_data):
        points, sites, metric = vector_data
        with pytest.raises(ValueError):
            sharded_census(points, sites, metric, ks=[len(sites) + 1])

    def test_unique_permutation_count_wrapper(self, string_data, pool):
        points, sites, metric = string_data
        serial = unique_permutation_count(points, sites, metric)
        sharded = unique_permutation_count(
            points, sites, metric, workers=2, shards=3
        )
        assert serial == sharded


class TestPermutationCountTrials:
    @pytest.mark.parametrize("workers,shards", [
        (None, None), (None, 4), (1, 1), (2, 4),
    ])
    def test_invariance(self, workers, shards):
        rng = np.random.default_rng(2008)
        points = np.random.default_rng(9).random((100, 2))
        metric = EuclideanDistance()
        reference = permutation_count_trials(
            points, metric, k=4, n_trials=3,
            rng=np.random.default_rng(2008),
        )
        result = permutation_count_trials(
            points, metric, k=4, n_trials=3, rng=rng,
            workers=workers, shards=shards,
        )
        assert result.counts == reference.counts
