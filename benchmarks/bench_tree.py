"""Bench: trees, twice over.

**Pytest benchmarks** (Theorem 4 / Corollary 5 / Figure 5 — tree metrics):

- random trees never exceed ``C(k,2) + 1`` distance permutations;
- the Corollary 5 path construction achieves the bound exactly for every k;
- the prefix metric (Fig 5) is a tree metric realizing the same bound on
  string data.

**Standalone tree-index benchmark** (run directly): build and
batched-query throughput of the four tree *indexes* (BK, VP, GH, List of
Clusters) on their array-backed substrate, versus looping the
single-query API — the paper's classic baselines on the dictionary
Levenshtein workload and an 8-d Euclidean workload.  Results go to
``BENCH_trees.json``; the full run asserts that at least two tree
indexes hold a >= 10x batched-query speedup on the dictionary workload.

    PYTHONPATH=src python benchmarks/bench_tree.py            # full
    PYTHONPATH=src python benchmarks/bench_tree.py --smoke    # CI sizes
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402
from conftest import write_result  # noqa: E402

from repro.core.constructions import corollary5_path_space  # noqa: E402
from repro.core.counting import tree_permutation_bound  # noqa: E402
from repro.core.permutation import (  # noqa: E402
    count_distinct_permutations,
    distance_permutations,
)
from repro.datasets.dictionaries import synthetic_dictionary  # noqa: E402
from repro.index import BKTree, GHTree, ListOfClusters, VPTree  # noqa: E402
from repro.metrics import (  # noqa: E402
    EuclideanDistance,
    LevenshteinDistance,
    PrefixDistance,
    random_tree_metric,
)


def test_corollary5_achieves_bound_for_all_k(benchmark, results_dir):
    def run():
        achieved = {}
        for k in range(2, 11):
            metric, sites = corollary5_path_space(k)
            perms = distance_permutations(metric.vertices, sites, metric)
            achieved[k] = count_distinct_permutations(perms)
        return achieved

    achieved = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Corollary 5 path construction: k, C(k,2)+1, achieved"]
    for k, count in achieved.items():
        bound = tree_permutation_bound(k)
        assert count == bound, (k, count, bound)
        lines.append(f"  k={k:>2}  bound={bound:>3}  achieved={count:>3}")
    write_result(results_dir, "tree_corollary5", "\n".join(lines))


def test_random_trees_respect_theorem4(benchmark):
    def run():
        rng = np.random.default_rng(5)
        worst_ratio = 0.0
        for trial in range(20):
            n = int(rng.integers(50, 400))
            tree = random_tree_metric(n, rng=rng, weighted=bool(trial % 2))
            k = int(rng.integers(2, 8))
            sites = [int(i) for i in rng.choice(n, size=k, replace=False)]
            perms = distance_permutations(tree.vertices, sites, tree)
            count = count_distinct_permutations(perms)
            bound = tree_permutation_bound(k)
            assert count <= bound
            worst_ratio = max(worst_ratio, count / bound)
        return worst_ratio

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 < worst <= 1.0


def test_prefix_metric_achieves_bound(benchmark, results_dir):
    """Fig 5's prefix metric: binary-counter strings embed the Corollary 5
    path, so the bound is achieved on actual string data."""

    def run():
        k = 6
        # Strings "", "a", "aa", ... embed a path of 2^(k-1) equal edges.
        path_strings = ["a" * i for i in range(2 ** (k - 1) + 1)]
        site_labels = [0] + [2**i for i in range(1, k)]
        sites = [path_strings[label] for label in site_labels]
        perms = distance_permutations(path_strings, sites, PrefixDistance())
        return k, count_distinct_permutations(perms)

    k, count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count == tree_permutation_bound(k)
    write_result(
        results_dir,
        "tree_prefix_metric",
        f"prefix metric, k={k} sites on an 'aaaa...' path: "
        f"{count} permutations = C({k},2)+1 = {tree_permutation_bound(k)}",
    )


# ----------------------------------------------------------------------
# Standalone tree-index benchmark (python benchmarks/bench_tree.py).
# ----------------------------------------------------------------------

#: Acceptance floor: at least this many tree indexes must beat the
#: looped single-query fallback by REQUIRED_SPEEDUP on the dictionary
#: Levenshtein workload in full mode.
REQUIRED_SPEEDUP = 10.0
REQUIRED_INDEXES = 2


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _looped_seconds(run_one, queries, sample_size):
    """Time the single-query loop on a subsample, scaled to the full set.

    Per-query cost is flat across a homogeneous query sample, so timing
    ``sample_size`` queries and scaling is faithful while keeping the
    loop being replaced from dominating the bench's wall clock.
    """
    sample = queries[: min(sample_size, len(queries))]
    _, elapsed = _timed(lambda: [run_one(q) for q in sample])
    return elapsed * len(queries) / len(sample)


def _bench_index(name, factory, queries, radius, k, loop_sample):
    index, t_build = _timed(factory)

    index.reset_stats()
    batched_range, t_range_batch = _timed(
        lambda: index.range_batch(queries, radius)
    )
    range_distances = index.stats.query_distances
    _, t_knn_batch = _timed(lambda: index.knn_batch(queries, k))

    t_range_loop = _looped_seconds(
        lambda q: index.range_query(q, radius), queries, loop_sample
    )
    t_knn_loop = _looped_seconds(
        lambda q: index.knn_query(q, k), queries, loop_sample
    )

    n_queries = len(queries)
    result = {
        "index": name,
        "build_s": round(t_build, 4),
        "build_distances": index.stats.build_distances,
        "range_radius": radius,
        "range_hits": sum(len(r) for r in batched_range),
        "range_distances_per_query": round(range_distances / n_queries, 1),
        "range_batched_qps": round(n_queries / t_range_batch, 1),
        "range_looped_qps": round(n_queries / t_range_loop, 1),
        "range_speedup": round(t_range_loop / t_range_batch, 1),
        "knn_k": k,
        "knn_batched_qps": round(n_queries / t_knn_batch, 1),
        "knn_looped_qps": round(n_queries / t_knn_loop, 1),
        "knn_speedup": round(t_knn_loop / t_knn_batch, 1),
    }
    print(
        f"  {name:12s} build {t_build * 1e3:8.1f} ms | "
        f"range {result['range_looped_qps']:8.1f} -> "
        f"{result['range_batched_qps']:8.1f} q/s "
        f"({result['range_speedup']:5.1f}x) | "
        f"knn {result['knn_looped_qps']:8.1f} -> "
        f"{result['knn_batched_qps']:8.1f} q/s "
        f"({result['knn_speedup']:5.1f}x)"
    )
    return result


def run_dictionary_workload(n, n_queries, loop_sample, rng):
    """The paper's Table 2 regime: a dictionary under edit distance."""
    words = synthetic_dictionary("English", n, rng)
    queries = [
        words[int(i)]
        for i in rng.choice(len(words), size=n_queries, replace=False)
    ]
    print(f"dictionary-levenshtein: n={len(words)}, {n_queries} queries")
    metric = LevenshteinDistance
    factories = {
        "bktree": lambda: BKTree(words, metric()),
        "vptree": lambda: VPTree(
            words, metric(), rng=np.random.default_rng(1)
        ),
        "ghtree": lambda: GHTree(
            words, metric(), rng=np.random.default_rng(2)
        ),
        "listclusters": lambda: ListOfClusters(
            words, metric(), bucket_size=16, rng=np.random.default_rng(3)
        ),
    }
    results = [
        _bench_index(name, factory, queries, 1, 10, loop_sample)
        for name, factory in factories.items()
    ]
    return {"dataset": "dictionary-levenshtein", "n": n, "indexes": results}


def run_euclidean_workload(n, n_queries, loop_sample, rng):
    """An 8-d uniform vector workload under L2 (no BK: non-integer)."""
    points = rng.random((n, 8))
    queries = rng.random((n_queries, 8))
    print(f"euclidean-8d: n={n}, {n_queries} queries")
    metric = EuclideanDistance
    factories = {
        "vptree": lambda: VPTree(
            points, metric(), rng=np.random.default_rng(4)
        ),
        "ghtree": lambda: GHTree(
            points, metric(), rng=np.random.default_rng(5)
        ),
        "listclusters": lambda: ListOfClusters(
            points, metric(), bucket_size=16, rng=np.random.default_rng(6)
        ),
    }
    results = [
        _bench_index(name, factory, queries, 0.45, 10, loop_sample)
        for name, factory in factories.items()
    ]
    return {"dataset": "euclidean-8d", "n": n, "indexes": results}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Tree-index substrate benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: exercises every tree's batched build "
        "and query paths, skips the speedup assertion, writes no JSON "
        "unless --output is given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"result JSON path (default: {REPO_ROOT / 'BENCH_trees.json'})",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(20080415)  # the paper's conference date
    if args.smoke:
        workloads = [
            run_dictionary_workload(300, 20, 10, rng),
            run_euclidean_workload(300, 20, 10, rng),
        ]
    else:
        workloads = [
            run_dictionary_workload(5_000, 500, 40, rng),
            run_euclidean_workload(5_000, 500, 40, rng),
        ]

    report = {
        "bench": "bench_tree",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke": args.smoke,
        "workloads": workloads,
    }
    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_trees.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if not args.smoke:
        winners = [
            r["index"]
            for r in workloads[0]["indexes"]
            if max(r["range_speedup"], r["knn_speedup"]) >= REQUIRED_SPEEDUP
        ]
        if len(winners) < REQUIRED_INDEXES:
            print(
                f"FAIL: only {winners} beat {REQUIRED_SPEEDUP}x on the "
                f"dictionary workload (need {REQUIRED_INDEXES})"
            )
            return 1
        print(
            f"OK: {winners} hold >= {REQUIRED_SPEEDUP}x batched-query "
            "speedup on the dictionary workload"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
