"""Bench: design-choice ablations called out in DESIGN.md.

1. **Tie-breaking**: the paper's ``Π_y`` breaks distance ties by lower
   site index (stable sort).  On tie-heavy discrete metrics, breaking
   ties the other way changes the census — demonstrating the rule is
   load-bearing, not cosmetic.
2. **Site selection**: random sites versus maxmin-spread sites change the
   *measured* census even though the theoretical maximum is fixed.
"""

from __future__ import annotations

import numpy as np
from conftest import write_result

from repro.core.permutation import (
    count_distinct_permutations,
    permutations_from_distances,
)
from repro.datasets.sisap import load_database
from repro.index import DistPermIndex


def _census_with_tiebreak(distances: np.ndarray, reverse: bool) -> int:
    if not reverse:
        perms = permutations_from_distances(distances)
    else:
        # Break ties by *higher* site index instead: stable-sort the
        # reversed columns, then map indices back.
        k = distances.shape[1]
        reversed_perms = np.argsort(distances[:, ::-1], axis=1, kind="stable")
        perms = (k - 1) - reversed_perms
    return count_distinct_permutations(perms)


def test_tiebreak_ablation_on_discrete_metric(benchmark, results_dir):
    def run():
        database = load_database("English", n=1500)
        rng = np.random.default_rng(0)
        site_indices = rng.choice(len(database.points), size=8, replace=False)
        sites = [database.points[int(i)] for i in site_indices]
        distances = database.metric.to_sites(database.points, sites)
        ties = int(
            (np.sort(distances, axis=1)[:, :-1]
             == np.sort(distances, axis=1)[:, 1:]).sum()
        )
        return (
            _census_with_tiebreak(distances, reverse=False),
            _census_with_tiebreak(distances, reverse=True),
            ties,
        )

    lower, higher, ties = benchmark.pedantic(run, rounds=1, iterations=1)
    # Edit distance is massively tie-heavy; the two rules must actually
    # disagree on the census (they partition tie groups differently).
    assert ties > 0
    assert lower != higher
    write_result(
        results_dir,
        "ablation_tiebreak",
        "\n".join(
            [
                "tie-break ablation (English dictionary, k=8, n=1500):",
                f"  adjacent tie pairs in distance rows: {ties}",
                f"  census, lower-index tie-break (paper): {lower}",
                f"  census, higher-index tie-break:        {higher}",
            ]
        ),
    )


def test_tiebreak_irrelevant_on_continuous_metric(benchmark):
    """Control: with continuous distances ties are measure-zero and the
    census is tie-break independent."""

    def run():
        database = load_database("nasa", n=1500)
        rng = np.random.default_rng(1)
        site_indices = rng.choice(len(database.points), size=8, replace=False)
        sites = [database.points[int(i)] for i in site_indices]
        distances = database.metric.to_sites(database.points, sites)
        return (
            _census_with_tiebreak(distances, reverse=False),
            _census_with_tiebreak(distances, reverse=True),
        )

    lower, higher = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lower == higher


def test_site_selection_ablation(benchmark, results_dir):
    def run():
        database = load_database("nasa", n=3000)
        census = {}
        for strategy in ("random", "maxmin", "first"):
            index = DistPermIndex(
                database.points,
                database.metric,
                n_sites=10,
                site_strategy=strategy,
                rng=np.random.default_rng(2),
            )
            census[strategy] = index.unique_permutations()
        return census

    census = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(count > 0 for count in census.values())
    lines = ["site-selection ablation (nasa, k=10, n=3000):"]
    for strategy, count in census.items():
        lines.append(f"  {strategy:>7}: {count} distinct permutations")
    write_result(results_dir, "ablation_site_selection", "\n".join(lines))
