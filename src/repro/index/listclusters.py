"""List of Clusters (Chávez & Navarro): compact exact index.

A sequence of (center, covering-radius, bucket) clusters built greedily:
each center absorbs its ``bucket_size`` nearest remaining elements.  At
query time a cluster is scanned only if the query ball intersects its
covering ball, and — the structure's signature trick — the search *stops*
if the query ball lies entirely inside the cluster ball, because
construction order guarantees later elements are outside it.  Designed for
the same high-dimensional regime the paper's databases live in.

The cluster list lives in flat arrays (center ids, covering radii, and a
CSR bucket table of element ids with their stored center distances); the
build evaluates each greedy step as one batched distance row.  Queries
proceed cluster-by-cluster — the structure's levels — offering each
cluster's center to every still-active query in one grouped call, then
evaluating the triangle-filtered (query, bucket element) pairs with
:func:`~repro.index.batching.frontier_distances`.  Within a cluster the
kNN pruning radius is fixed at its post-center value (the bucket filter
is one vectorized comparison), so the batched and single-query paths are
answer-for-answer and count-for-count identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.base import Index, Neighbor, NeighborArrays
from repro.index.batching import (
    PRUNE_SAFETY,
    BatchKnnState,
    frontier_distances,
    heap_neighbors,
    heap_radius,
    offer,
    rows_from_pairs,
    take_points,
)
from repro.metrics.base import Metric

__all__ = ["ListOfClusters"]


@dataclass
class _Cluster:
    """Read-only view of one cluster, materialized from the flat arrays."""

    center: int
    radius: float
    bucket: List[int]
    bucket_distances: List[float]  # distances center -> bucket element


class ListOfClusters(Index):
    """List of Clusters with fixed bucket size; exact range and kNN."""

    def __init__(
        self,
        points: Sequence[Any],
        metric: Metric,
        bucket_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ):
        if bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        self.bucket_size = bucket_size
        self._rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(points, metric)

    def _build(self) -> None:
        remaining = list(range(len(self.points)))
        centers: List[int] = []
        radii: List[float] = []
        offsets: List[int] = [0]
        bucket_items: List[int] = []
        bucket_dists: List[float] = []
        while remaining:
            # Next center: the element farthest from the previous center
            # (first center random) — the heuristic of the original paper.
            if not centers:
                pick = int(self._rng.integers(0, len(remaining)))
            else:
                row = self.metric.batch_distances(
                    [self.points[centers[-1]]],
                    take_points(
                        self.points, np.asarray(remaining, dtype=np.int64)
                    ),
                )[0]
                pick = int(np.argmax(row))
            center = remaining.pop(pick)
            centers.append(center)
            if not remaining:
                radii.append(0.0)
                offsets.append(len(bucket_items))
                break
            distances = self.metric.batch_distances(
                [self.points[center]],
                take_points(self.points, np.asarray(remaining, dtype=np.int64)),
            )[0]
            take = min(self.bucket_size, len(remaining))
            order = np.argsort(distances, kind="stable")[:take]
            bucket = [remaining[int(i)] for i in order]
            bucket_items.extend(bucket)
            bucket_dists.extend(float(distances[int(i)]) for i in order)
            radii.append(float(distances[int(order[-1])]))
            offsets.append(len(bucket_items))
            chosen = set(bucket)
            remaining = [i for i in remaining if i not in chosen]
        self._centers = np.asarray(centers, dtype=np.int64)
        self._radii = np.asarray(radii, dtype=np.float64)
        self._bucket_offsets = np.asarray(offsets, dtype=np.int64)
        self._bucket_items = np.asarray(bucket_items, dtype=np.int64)
        self._bucket_dists = np.asarray(bucket_dists, dtype=np.float64)

    @property
    def clusters(self) -> List[_Cluster]:
        """The cluster sequence as materialized read-only views."""
        views = []
        for c in range(self._centers.shape[0]):
            start = int(self._bucket_offsets[c])
            stop = int(self._bucket_offsets[c + 1])
            views.append(
                _Cluster(
                    int(self._centers[c]),
                    float(self._radii[c]),
                    [int(i) for i in self._bucket_items[start:stop]],
                    [float(d) for d in self._bucket_dists[start:stop]],
                )
            )
        return views

    def _bucket_slice(self, c: int) -> Tuple[np.ndarray, np.ndarray]:
        start = int(self._bucket_offsets[c])
        stop = int(self._bucket_offsets[c + 1])
        return self._bucket_items[start:stop], self._bucket_dists[start:stop]

    # ------------------------------------------------------------------
    # Single-query scan: the same cluster-by-cluster algorithm the
    # batched path vectorizes, with scalar metric calls.
    # ------------------------------------------------------------------

    def _range_impl(self, query: Any, radius: float) -> List[Neighbor]:
        results: List[Neighbor] = []
        for c in range(self._centers.shape[0]):
            d_center = self.metric.distance(
                query, self.points[self._centers[c]]
            )
            if d_center <= radius:
                results.append(Neighbor(d_center, int(self._centers[c])))
            # Stored radii and bucket distances come from the vectorized
            # build, so every bound carries PRUNE_SAFETY slack against
            # ulp drift from the scalar query-time formula.
            eps = PRUNE_SAFETY * (1.0 + radius)
            # Scan the bucket only if the query ball meets the cluster ball.
            if d_center <= self._radii[c] + radius + eps:
                items, dists = self._bucket_slice(c)
                for i, d_ci in zip(items, dists):
                    # Cheap triangle filter from the stored center distance.
                    if abs(d_center - d_ci) > radius + eps:
                        continue
                    d = self.metric.distance(query, self.points[i])
                    if d <= radius:
                        results.append(Neighbor(d, int(i)))
            # Containment cut: everything after this cluster lies outside
            # its ball; if the query ball is inside, nothing later matches.
            if d_center + radius < self._radii[c] - eps:
                break
        return results

    def _knn_impl(self, query: Any, k: int) -> List[Neighbor]:
        heap: List[tuple] = []
        for c in range(self._centers.shape[0]):
            d_center = self.metric.distance(
                query, self.points[self._centers[c]]
            )
            offer(heap, k, d_center, int(self._centers[c]))
            # The pruning radius is fixed for the whole bucket at its
            # post-center value, so the filtered element set is one
            # vectorized comparison in the batched path.
            r = heap_radius(heap, k)
            eps = PRUNE_SAFETY * (1.0 + r)
            if d_center <= self._radii[c] + r + eps:
                items, dists = self._bucket_slice(c)
                for i, d_ci in zip(items, dists):
                    if abs(d_center - d_ci) > r + eps:
                        continue
                    offer(
                        heap, k,
                        self.metric.distance(query, self.points[i]),
                        int(i),
                    )
            r = heap_radius(heap, k)
            if d_center + r < self._radii[c] - PRUNE_SAFETY * (1.0 + r):
                break
        return heap_neighbors(heap)

    # ------------------------------------------------------------------
    # Batched scan.
    # ------------------------------------------------------------------

    def _center_distances(
        self, queries: Sequence[Any], active: np.ndarray, c: int
    ) -> np.ndarray:
        return self.metric.batch_distances(
            take_points(queries, active), [self.points[self._centers[c]]]
        )[:, 0]

    def _bucket_pairs(
        self,
        active: np.ndarray,
        d_center: np.ndarray,
        bounds: np.ndarray,
        c: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Triangle-filtered (query, bucket element) pairs of one cluster."""
        items, dists = self._bucket_slice(c)
        eps = PRUNE_SAFETY * (1.0 + bounds)
        scanning = np.flatnonzero(d_center <= self._radii[c] + bounds + eps)
        if scanning.size == 0 or items.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        keep = (
            np.abs(d_center[scanning, None] - dists[None, :])
            <= (bounds + eps)[scanning, None]
        )
        rows, cols = np.nonzero(keep)
        return active[scanning[rows]], items[cols]

    def _range_batch_impl(
        self, queries: Sequence[Any], radius: float
    ) -> NeighborArrays:
        n_queries = len(queries)
        hit_queries: List[np.ndarray] = []
        hit_indices: List[np.ndarray] = []
        hit_distances: List[np.ndarray] = []
        active = np.arange(n_queries, dtype=np.int64)
        for c in range(self._centers.shape[0]):
            if active.size == 0:
                break
            d_center = self._center_distances(queries, active, c)
            hits = np.flatnonzero(d_center <= radius)
            if hits.shape[0]:
                hit_queries.append(active[hits])
                hit_indices.append(
                    np.full(hits.shape[0], self._centers[c], dtype=np.int64)
                )
                hit_distances.append(d_center[hits])
            pair_queries, pair_items = self._bucket_pairs(
                active, d_center, np.full(active.shape[0], radius), c
            )
            if pair_queries.size:
                pair_d = frontier_distances(
                    self.metric, queries, self.points, pair_queries, pair_items
                )
                hits = np.flatnonzero(pair_d <= radius)
                if hits.shape[0]:
                    hit_queries.append(pair_queries[hits])
                    hit_indices.append(pair_items[hits])
                    hit_distances.append(pair_d[hits])
            eps = PRUNE_SAFETY * (1.0 + radius)
            active = active[~(d_center + radius < self._radii[c] - eps)]
        if not hit_queries:
            return NeighborArrays.empty(n_queries)
        return rows_from_pairs(
            n_queries,
            np.concatenate(hit_queries),
            np.concatenate(hit_indices),
            np.concatenate(hit_distances),
        )

    def _knn_batch_impl(
        self, queries: Sequence[Any], k: int
    ) -> NeighborArrays:
        n_queries = len(queries)
        state = BatchKnnState(n_queries, k)
        active = np.arange(n_queries, dtype=np.int64)
        for c in range(self._centers.shape[0]):
            if active.size == 0:
                break
            d_center = self._center_distances(queries, active, c)
            state.offer_pairs(
                active,
                np.full(active.shape[0], self._centers[c], dtype=np.int64),
                d_center,
            )
            pair_queries, pair_items = self._bucket_pairs(
                active, d_center, state.radii[active], c
            )
            if pair_queries.size:
                pair_d = frontier_distances(
                    self.metric, queries, self.points, pair_queries, pair_items
                )
                state.offer_pairs(pair_queries, pair_items, pair_d)
            bounds = state.radii[active]
            eps = PRUNE_SAFETY * (1.0 + bounds)
            active = active[~(d_center + bounds < self._radii[c] - eps)]
        return state.results()

    def _knn_approx_batch_impl(
        self, queries: Sequence[Any], k: int, budget: Optional[int]
    ) -> NeighborArrays:
        # Exact search; the budget is ignored, as in the single-query path.
        return self._knn_batch_impl(queries, k)
