"""Tests for the figure reproductions and the L1 counterexample."""

from __future__ import annotations

import pytest

from repro.core.counting import euclidean_permutation_count
from repro.experiments.counterexample import (
    PAPER_COUNTEREXAMPLE_SITES,
    counterexample_census,
    search_counterexamples,
)
from repro.experiments.figures import (
    cells_hit_experiment,
    figure_cell_counts,
    paperlike_sites,
)


@pytest.fixture(scope="module")
def counts():
    return figure_cell_counts(resolution=320)


class TestFigures1Through4:
    def test_fig1_order1_voronoi_has_four_cells(self, counts):
        assert counts["order1_cells"] == 4

    def test_fig2_order2_refines_order1(self, counts):
        assert counts["order2_cells"] >= counts["order1_cells"]

    def test_fig3_euclidean_has_18_cells(self, counts):
        """'the diagram only contains 18 cells, not even one for each
        permutation' — and 18 = N_{2,2}(4)."""
        assert counts["l2_cells_exact"] == 18
        assert euclidean_permutation_count(2, 4) == 18

    def test_fig3_grid_engine_agrees_with_exact(self, counts):
        assert counts["l2_cells_grid"] == counts["l2_cells_exact"]

    def test_fig4_l1_also_has_18_cells(self, counts):
        """'the system of bisectors in Fig. 4, with the L1 metric, also
        produces 18 cells'."""
        assert counts["l1_cells_grid"] == 18

    def test_fig4_permutation_sets_differ(self, counts):
        """'but they are not the same 18 distance permutations. Some
        permutations exist in each diagram that are not in the other.'"""
        assert counts["l1_only"]
        assert counts["l2_only"]
        assert len(counts["l1_only"]) == len(counts["l2_only"])

    def test_paperlike_sites_shape(self):
        sites = paperlike_sites()
        assert sites.shape == (4, 2)
        assert (sites >= 0).all() and (sites <= 1).all()


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return cells_hit_experiment(
            sizes=(10, 100, 2000), resolution=320
        )

    def test_box_realizes_fewer_than_space(self, result):
        """Cross-hatched cells of Fig. 7: outside the data range forever."""
        assert result.realizable_in_box < result.realizable_in_space

    def test_hits_monotone_in_database_size(self, result):
        sizes = sorted(result.hits_by_size)
        hits = [result.hits_by_size[s] for s in sizes]
        assert hits == sorted(hits)

    def test_hits_saturate_at_box_count(self, result):
        for hits in result.hits_by_size.values():
            assert hits <= result.realizable_in_box
        assert result.hits_by_size[2000] == result.realizable_in_box

    def test_small_database_misses_cells(self, result):
        """'Some cells ... may not happen to contain any database points'."""
        assert result.hits_by_size[10] < result.realizable_in_box


class TestCounterexample:
    def test_paper_sites_exceed_euclidean_limit(self):
        """Eq. 12: five 3-d L1 sites with more permutations than
        N_{3,2}(5) = 96 (the paper observed 108 with 10^6 points)."""
        result = counterexample_census(n_points=400_000, seed=20080411)
        assert result.euclidean_limit == 96
        assert result.observed > 96
        assert result.exceeds

    def test_observed_close_to_paper_at_full_scale_is_documented(self):
        # At reduced n the count is a lower bound; it must already be
        # within the plausible band around the paper's 108.
        result = counterexample_census(n_points=400_000, seed=1)
        assert 96 < result.observed <= 120

    def test_euclidean_sites_do_not_exceed(self):
        """Under L2 the same sites must respect the Theorem 7 limit."""
        result = counterexample_census(
            PAPER_COUNTEREXAMPLE_SITES, p=2.0, n_points=200_000
        )
        assert result.observed <= 96
        assert not result.exceeds

    def test_result_metadata(self):
        result = counterexample_census(n_points=10_000)
        assert result.d == 3
        assert result.k == 5
        assert result.p == 1.0

    def test_search_returns_only_exceeding_configs(self):
        successes = search_counterexamples(
            d=3, k=5, p=1.0, n_trials=4, n_points=50_000, seed=3
        )
        for result, sites in successes:
            assert result.exceeds
            assert sites.shape == (5, 3)
