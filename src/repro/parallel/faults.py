"""Deterministic fault injection for the shard-resident worker runtime.

Supervision code is only trustworthy if its failure paths run on every
CI invocation, not just when the scheduler happens to misbehave.  This
module gives the worker runtime (:mod:`repro.parallel.workerpool`) a
deterministic way to make a *chosen* worker fail on a *chosen* request:

- ``kill``   — the worker SIGKILLs itself (an uncatchable crash: the
  supervisor sees the process sentinel, exactly as for an OOM kill);
- ``stall``  — the worker sleeps ``stall_s`` seconds before answering (a
  hang: only a deadline can detect it);
- ``corrupt``— the worker sends a malformed reply (wire corruption /
  worker gone insane: the reply fails validation in the supervisor).

Faults are addressed by ``(shard, request, generation)``: the Nth query
request handled by the worker pinned to ``shard`` in its
``generation``-th incarnation (0 = the original process, 1 = the first
respawn, ...).  Keying on the generation is what makes injection
deterministic end to end: a respawned worker starts a fresh request
counter, and a spec written for generation 0 does **not** re-fire after
recovery — so a recovery test converges instead of crash-looping.

Specs come from the constructor (tests, benches) or from the
``REPRO_FAULTS`` environment variable, a comma-separated list of
``kind:shard=I:request=N[:stall_s=S][:generation=G]`` items, e.g.::

    REPRO_FAULTS="kill:shard=1:request=3" repro search ... --resident

The injector itself lives *inside* the worker process and is exercised
by the same code path real requests take.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = [
    "FAULTS_ENV",
    "FaultSpec",
    "FaultInjector",
    "parse_faults",
    "faults_from_env",
]

#: Environment variable holding fault specs for the worker runtime.
FAULTS_ENV = "REPRO_FAULTS"

_KINDS = ("kill", "stall", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: make ``shard``'s worker fail on one request.

    ``request`` is 1-based and counts only query requests (pings and
    shutdowns are never faulted); ``generation`` selects which
    incarnation of the worker fires (respawns increment it, so the
    default 0 means "the original process only").
    """

    kind: str
    shard: int
    request: int
    stall_s: float = 30.0
    generation: int = 0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.request < 1:
            raise ValueError(
                f"fault request is 1-based, got {self.request}"
            )
        if self.stall_s < 0:
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s}")
        if self.generation < 0:
            raise ValueError(
                f"fault generation must be >= 0, got {self.generation}"
            )


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` string into fault specs.

    Format: comma-separated ``kind:shard=I:request=N`` items with
    optional ``:stall_s=S`` and ``:generation=G`` fields; whitespace
    around items is ignored, an empty string means no faults.
    """
    specs = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        fields = item.split(":")
        kind = fields[0].strip()
        values = {}
        for field in fields[1:]:
            key, sep, value = field.partition("=")
            key = key.strip()
            if not sep or key not in (
                "shard", "request", "stall_s", "generation"
            ):
                raise ValueError(
                    f"bad fault field {field!r} in {item!r} (expected "
                    "shard=I, request=N, stall_s=S, or generation=G)"
                )
            try:
                values[key] = (
                    float(value) if key == "stall_s" else int(value)
                )
            except ValueError:
                raise ValueError(
                    f"bad fault value {value!r} for {key} in {item!r}"
                ) from None
        if "shard" not in values or "request" not in values:
            raise ValueError(
                f"fault {item!r} needs both shard= and request= fields"
            )
        specs.append(FaultSpec(kind=kind, **values))
    return tuple(specs)


def faults_from_env() -> Tuple[FaultSpec, ...]:
    """Fault specs from ``REPRO_FAULTS`` (empty when unset)."""
    return parse_faults(os.environ.get(FAULTS_ENV, ""))


class FaultInjector:
    """Worker-resident request counter that fires matching fault specs.

    One injector per worker incarnation: ``next_action()`` is called
    once per query request and returns the spec to enact (or ``None``).
    When several specs match one request, the first wins.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        *,
        shard: int,
        generation: int,
    ):
        self._specs = [
            spec
            for spec in specs
            if spec.shard == shard and spec.generation == generation
        ]
        self._requests = 0

    def next_action(self) -> Optional[FaultSpec]:
        """Advance the request counter; return the fault to enact, if any."""
        self._requests += 1
        for spec in self._specs:
            if spec.request == self._requests:
                return spec
        return None
