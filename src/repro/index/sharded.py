"""Sharded index: partition the database, fan queries out, merge answers.

:class:`ShardedIndex` splits a database into ``S`` balanced contiguous
shards, builds any inner index type over each shard, and answers every
query in the :class:`~repro.index.base.Index` API — ``knn`` / ``range`` /
``knn_approx``, single and batched — by fanning the query set out to the
shards and merging the per-shard answers.  Shard-local neighbor indices
are offset back into global database positions, and because the shards
are contiguous ranges, per-shard ``(distance, index)`` orderings merge
into exactly the global ordering: exact queries return answers identical
to the unsharded index — same neighbor sets, same tie-breaking — for any
shard count and any worker count.  The one caveat is inherited from the
batched engine (see :mod:`repro.index.base`): vectorized *float* metrics
compute through matrix kernels whose rounding can depend on the matrix
width, so Euclidean distances can differ from the unsharded index in the
last ulp; discrete metrics (strings, trees, matrices) share one integer
code path and are bit-identical.

Cost accounting is aggregated: every inner index wraps its own
:class:`~repro.metrics.base.CountingMetric`, and the fan-out charges the
sum of per-shard evaluation deltas to the sharded index's own counter, so
:class:`~repro.index.base.SearchStats` reads the same totals the
unsharded equivalent would report for exhaustive inner indexes (the sum
over a partition of the database is the whole database).  Budgeted
``knn_approx`` splits the budget across shards proportionally to shard
size (rounding up, each shard keeping at least ``k``), so the evaluation
budget — like the data — is sharded.

Execution runs through :mod:`repro.parallel`: the serial backend builds
and queries shards in order in-process (zero overhead, the reference
semantics), while a process pool builds shards from a zero-copy
shared-memory view of the database and serves queries from per-worker
shard replicas, published once as shared-memory payloads rather than
re-shipped per call.  Results are deterministic — identical across
``workers`` settings — because the fan-out/merge is ordered by shard.

``resident=True`` selects a third query engine: the supervised
worker-pool runtime (:mod:`repro.parallel.workerpool`).  One pinned
process per shard holds that shard resident — bounding memory to one
shard copy per worker, where the stateless pool can replicate up to
``S`` shards into each — and the fan-out enforces the index's
:class:`~repro.parallel.workerpool.QueryPolicy`: per-query deadlines,
crash detection, respawn-and-retry, and (under
``on_partial="degrade"``) honest partial answers merged from the
surviving shards, with :class:`~repro.index.base.SearchStats` carrying
``shards_answered`` / ``degraded`` / per-shard latencies.  Builds still
use ``workers``; residency is a query-path property.

Two practical notes: inner factories must be picklable for pool
execution (a class, ``functools.partial``, or module-level function, not
a lambda) and deterministic (seed any randomness inside the factory, do
not share a mutable generator across shards, or serial and pool builds
will diverge); and nesting a ``ShardedIndex`` inside a ``ShardedIndex``
is unsupported.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.index.base import Index, Neighbor
from repro.index.linear import LinearScan
from repro.metrics.base import Metric
from repro.parallel.census import shard_ranges
from repro.parallel.executor import Executor, get_executor, serial_workers
from repro.parallel.faults import FaultSpec
from repro.parallel.sharedmem import SharedDataset
from repro.parallel.workerpool import (
    FileShardSource,
    QueryPolicy,
    ShmShardSource,
    WorkerPool,
)

__all__ = ["ShardedIndex", "shard_index"]

InnerFactory = Callable[[Sequence[Any], Metric], Index]


def _build_shard_task(
    dataset: SharedDataset,
    start: int,
    stop: int,
    factory: InnerFactory,
    metric: Metric,
) -> Tuple[type, dict]:
    """Build one shard's inner index in a worker; return its state.

    The shard's points come from the shared dataset (sliced in place);
    the returned state omits them so only the index payload travels back
    — the parent reattaches its own shard view.
    """
    points = dataset.resolve()[start:stop]
    index = factory(points, metric)
    state = dict(index.__dict__)
    state.pop("points")
    return type(index), state


def _query_shard_task(
    payload: SharedDataset,
    op: str,
    queries_dataset: SharedDataset,
    arg: Any,
    budget: Optional[int],
) -> Tuple[List[List[Neighbor]], int]:
    """Answer one shard's slice of a batched query in a worker.

    The shard index is unpickled from its shared-memory payload once per
    worker process (cached), so repeated batches pay no per-call
    shipping.  Returns shard-local results plus the distance-evaluation
    delta, measured by the shard's own counter.
    """
    shard: Index = payload.resolve()
    queries = queries_dataset.resolve()
    before = shard.metric.count
    if op == "range":
        results = shard.range_batch(queries, arg)
    elif op == "knn":
        results = shard.knn_batch(queries, arg)
    else:
        results = shard.knn_approx_batch(queries, arg, budget=budget)
    return results, shard.metric.count - before


class ShardedIndex(Index):
    """Partition any database across per-shard inner indexes.

    ``inner_factory(points, metric) -> Index`` builds each shard's index
    (default: :class:`~repro.index.linear.LinearScan`); ``n_shards``
    bounds the shard count (capped at ``len(points)``); ``workers``
    follows the library-wide convention (``None``/``0``/``"serial"`` for
    in-process execution, a positive integer for a process pool used for
    both builds and queries).  Close the index (or use it as a context
    manager) when a pool is attached, to release worker processes and
    shared-memory payloads.

    ``resident=True`` serves queries from one supervised, pinned worker
    process per shard (see :mod:`repro.parallel.workerpool`); ``policy``
    is the :class:`~repro.parallel.workerpool.QueryPolicy` those
    fan-outs enforce (default: unbounded deadline, one retry, exact
    answers) and ``faults`` injects deterministic worker failures for
    tests and benches (default: read from ``REPRO_FAULTS``).
    """

    def __init__(
        self,
        points: Sequence[Any],
        metric: Metric,
        inner_factory: InnerFactory = LinearScan,
        *,
        n_shards: int = 4,
        workers: Optional[int] = None,
        resident: bool = False,
        policy: Optional[QueryPolicy] = None,
        faults: Optional[Sequence[FaultSpec]] = None,
    ):
        if n_shards < 1:
            raise ValueError(f"need n_shards >= 1, got {n_shards}")
        self._inner_factory = inner_factory
        self._requested_shards = n_shards
        self._init_runtime(workers, resident, policy, faults)
        try:
            super().__init__(points, metric)
        except BaseException:
            # A failed build (or a worker-pool spawn failure) must not
            # strand shared-memory segments or child processes behind a
            # half-constructed object only ``__del__`` might reap.
            self.close()
            raise

    def _init_runtime(
        self, workers, resident=False, policy=None, faults=None
    ) -> None:
        """Set the execution-state attributes (also used by the loader)."""
        serial_workers(workers)  # validate the spec early
        if policy is not None and not isinstance(policy, QueryPolicy):
            raise TypeError(
                f"policy must be a QueryPolicy, got {type(policy).__name__}"
            )
        self._workers = workers
        self._resident = bool(resident)
        self._policy = policy if policy is not None else QueryPolicy()
        self._faults = faults
        self._executor: Optional[Executor] = None
        self._query_payloads: Optional[List[SharedDataset]] = None
        self._worker_pool: Optional[WorkerPool] = None
        self._points_payload: Optional[SharedDataset] = None
        #: Set by the loader for disk-backed indexes; resident workers
        #: then reload shard state from this payload file on respawn.
        self._payload_path: Optional[str] = None

    # ------------------------------------------------------------------
    # Build.
    # ------------------------------------------------------------------

    def _build(self) -> None:
        ranges = shard_ranges(len(self.points), self._requested_shards)
        self.shard_offsets = [start for start, _ in ranges] + [len(self.points)]
        raw_metric = self.metric.inner
        if serial_workers(self._workers):
            self.shards: List[Index] = [
                self._inner_factory(self.points[start:stop], raw_metric)
                for start, stop in ranges
            ]
        else:
            dataset = SharedDataset.publish(self.points)
            try:
                built = self._get_executor().map(
                    _build_shard_task,
                    [
                        (dataset, start, stop, self._inner_factory, raw_metric)
                        for start, stop in ranges
                    ],
                )
            finally:
                dataset.unlink()
            self.shards = []
            for (start, stop), (cls, state) in zip(ranges, built):
                shard = cls.__new__(cls)
                shard.__dict__.update(state)
                shard.points = self.points[start:stop]
                self.shards.append(shard)
        # Charge aggregate shard build cost to this index's own counter,
        # which Index.__init__ is about to read into stats.
        self.metric.count += sum(s.stats.build_distances for s in self.shards)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # Fan-out execution.
    # ------------------------------------------------------------------

    def _get_executor(self) -> Executor:
        if self._executor is None:
            self._executor = get_executor(self._workers)
        return self._executor

    def _ensure_worker_pool(self) -> WorkerPool:
        """Spawn the pinned worker-per-shard pool on first resident query.

        Each worker gets a *source* it can reload its shard from on
        every (re)spawn: the owner's shared-memory publication of the
        built shard, or — for disk-backed indexes restored by
        ``load_sharded`` — the Corollary-8 payload file plus a
        shared-memory view of the full point set (so respawns reread
        only the packed codes, never the database).
        """
        if self._worker_pool is None:
            if self._payload_path is not None:
                if self._points_payload is None:
                    self._points_payload = SharedDataset.publish(self.points)
                raw_metric = self.metric.inner
                sources: List[Any] = [
                    FileShardSource(
                        self._payload_path,
                        s,
                        self._points_payload,
                        self.shard_offsets[s],
                        self.shard_offsets[s + 1],
                        raw_metric,
                    )
                    for s in range(self.n_shards)
                ]
            else:
                sources = [
                    ShmShardSource(payload)
                    for payload in self._publish_shards()
                ]
            self._worker_pool = WorkerPool(sources, faults=self._faults)
        return self._worker_pool

    def _split_budget(self, k: int, budget: Optional[int]) -> List[Optional[int]]:
        """Per-shard budgets, proportional to shard size (rounded up).

        Each shard keeps at least ``min(k, shard size)`` so every shard
        can still surface ``k`` candidates for the global merge; the
        ceiling rounding over-allocates by at most one evaluation per
        shard.  ``None`` (exact) stays ``None`` everywhere.
        """
        if budget is None:
            return [None] * self.n_shards
        n = len(self.points)
        out: List[Optional[int]] = []
        for s in range(self.n_shards):
            size = self.shard_offsets[s + 1] - self.shard_offsets[s]
            out.append(max(min(k, size), math.ceil(budget * size / n)))
        return out

    def _fanout(
        self,
        op: str,
        queries: Sequence[Any],
        arg: Any,
        budget: Optional[int] = None,
    ) -> List[List[Neighbor]]:
        """Run one batched operation on every shard and merge the answers.

        Per-shard results arrive sorted with shard-local indices; the
        merge offsets them into global positions and concatenates across
        shards per query (the public API's final sort restores the global
        order, identical to the unsharded index).  Evaluation deltas from
        every shard are charged to this index's counter.

        Resident mode adds the failure semantics: shards that failed
        past the policy's retry/deadline bounds come back as ``None``
        under ``on_partial="degrade"`` and are simply absent from the
        merge — a *subset* answer, flagged via ``stats.degraded`` /
        ``stats.shards_answered`` rather than returned silently.
        """
        budgets = self._split_budget(arg, budget) if op == "knn-approx" else (
            [None] * self.n_shards
        )
        if self._resident:
            pool = self._ensure_worker_pool()
            per_shard, deltas, latencies = pool.query(
                op, queries, arg, budgets, self._policy
            )
            self.metric.count += sum(deltas)
            answered = sum(1 for r in per_shard if r is not None)
            self.stats.shards_answered = answered
            self.stats.shard_latencies_s = tuple(latencies)
            if answered < self.n_shards:
                self.stats.degraded = True
        elif serial_workers(self._workers):
            per_shard = []
            for shard, shard_budget in zip(self.shards, budgets):
                before = shard.metric.count
                if op == "range":
                    results = shard.range_batch(queries, arg)
                elif op == "knn":
                    results = shard.knn_batch(queries, arg)
                else:
                    results = shard.knn_approx_batch(
                        queries, arg, budget=shard_budget
                    )
                self.metric.count += shard.metric.count - before
                per_shard.append(results)
        else:
            payloads = self._publish_shards()
            # Per-call payload: ephemeral, so workers copy-and-close
            # instead of caching — repeated batches cannot grow worker
            # memory (the shard replicas above are the only cached state).
            queries_dataset = SharedDataset.publish(
                queries if hasattr(queries, "dtype") else list(queries),
                ephemeral=True,
            )
            try:
                answers = self._get_executor().map(
                    _query_shard_task,
                    [
                        (payload, op, queries_dataset, arg, shard_budget)
                        for payload, shard_budget in zip(payloads, budgets)
                    ],
                )
            finally:
                queries_dataset.unlink()
            per_shard = [results for results, _ in answers]
            self.metric.count += sum(delta for _, delta in answers)
        merged: List[List[Neighbor]] = []
        for q in range(len(queries)):
            row: List[Neighbor] = []
            for s, results in enumerate(per_shard):
                if results is None:  # degraded: this shard never answered
                    continue
                offset = self.shard_offsets[s]
                row.extend(
                    Neighbor(neighbor.distance, neighbor.index + offset)
                    for neighbor in results[q]
                )
            merged.append(row)
        return merged

    def _publish_shards(self) -> List[SharedDataset]:
        """Publish each built shard once for pool workers to replicate.

        Publication is resumable: payloads append to the tracked list as
        they are created, so if one publish fails (``/dev/shm`` full,
        say) the ones already made stay reachable through ``close()``
        instead of leaking behind a local variable, and a retry picks up
        where the failure left off.
        """
        if self._query_payloads is None:
            self._query_payloads = []
        while len(self._query_payloads) < len(self.shards):
            self._query_payloads.append(
                SharedDataset.publish(self.shards[len(self._query_payloads)])
            )
        return self._query_payloads

    # ------------------------------------------------------------------
    # Index implementation hooks: batched is primary, single-query is a
    # batch of one.
    # ------------------------------------------------------------------

    def _range_batch_impl(
        self, queries: Sequence[Any], radius: float
    ) -> List[List[Neighbor]]:
        return self._fanout("range", queries, radius)

    def _knn_batch_impl(
        self, queries: Sequence[Any], k: int
    ) -> List[List[Neighbor]]:
        return self._fanout("knn", queries, k)

    def _knn_approx_batch_impl(
        self, queries: Sequence[Any], k: int, budget: Optional[int]
    ) -> List[List[Neighbor]]:
        return self._fanout("knn-approx", queries, k, budget)

    def _range_impl(self, query: Any, radius: float) -> List[Neighbor]:
        return self._range_batch_impl([query], radius)[0]

    def _knn_impl(self, query: Any, k: int) -> List[Neighbor]:
        return self._knn_batch_impl([query], k)[0]

    def _knn_approx_impl(
        self, query: Any, k: int, budget: Optional[int]
    ) -> List[Neighbor]:
        return self._knn_approx_batch_impl([query], k, budget)[0]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release workers and shared-memory payloads (idempotent).

        Safe on partially-built indexes: a constructor that failed
        mid-build calls this before re-raising, at which point any
        subset of the runtime attributes may exist — hence the
        ``getattr`` reads rather than attribute access.
        """
        pool = getattr(self, "_worker_pool", None)
        if pool is not None:
            self._worker_pool = None
            pool.close()
        payloads = getattr(self, "_query_payloads", None)
        if payloads is not None:
            self._query_payloads = None
            for payload in payloads:
                payload.unlink()
        points_payload = getattr(self, "_points_payload", None)
        if points_payload is not None:
            self._points_payload = None
            points_payload.unlink()
        executor = getattr(self, "_executor", None)
        if executor is not None:
            self._executor = None
            executor.close()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        inner = type(self.shards[0]).__name__ if self.shards else "?"
        return (
            f"ShardedIndex(n={len(self.points)}, shards={self.n_shards}, "
            f"inner={inner}, workers={self._workers!r})"
        )


def shard_index(
    index: Index,
    *,
    n_shards: int,
    workers: Optional[int] = None,
    inner_factory: Optional[InnerFactory] = None,
    resident: bool = False,
    policy: Optional[QueryPolicy] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
) -> ShardedIndex:
    """Wrap an existing index's database in a :class:`ShardedIndex`.

    Rebuilds per-shard indexes of ``type(index)`` (or ``inner_factory``)
    over the same points and metric.  Index types whose constructors need
    more than ``(points, metric)`` — pivot counts, site counts, seeds —
    should pass an explicit ``inner_factory`` (e.g. a
    ``functools.partial``) to control those parameters per shard.
    ``resident`` / ``policy`` / ``faults`` select and configure the
    supervised worker runtime exactly as on :class:`ShardedIndex`.
    """
    factory = inner_factory if inner_factory is not None else type(index)
    return ShardedIndex(
        index.points,
        index.metric.inner,
        factory,
        n_shards=n_shards,
        workers=workers,
        resident=resident,
        policy=policy,
        faults=faults,
    )
