"""Online query serving: micro-batched socket service over any index.

The serving layer turns the repository's batch engine into a live
service: an asyncio socket server (:mod:`repro.serve.server`) coalesces
concurrent clients' requests into batching windows
(:mod:`repro.serve.batcher`) so the batch kernels' throughput applies
to online traffic, a binary length-prefixed protocol ships results as
raw ``NeighborArrays`` columns (:mod:`repro.serve.protocol`), async and
sync clients multiplex requests (:mod:`repro.serve.client`), and an
open-loop Poisson load generator measures sustainable qps at a latency
SLO (:mod:`repro.serve.loadgen`).
"""

from repro.serve.batcher import BatchConfig, MicroBatcher, RejectedError
from repro.serve.client import (
    AsyncClient,
    Pong,
    ServeResult,
    ServerBusyError,
    ServerError,
    SyncClient,
)
from repro.serve.loadgen import LoadReport, run_open_loop
from repro.serve.server import QueryServer, ServerHandle, serve_in_thread
from repro.serve.stats import ServerStats

__all__ = [
    "AsyncClient",
    "BatchConfig",
    "LoadReport",
    "MicroBatcher",
    "Pong",
    "QueryServer",
    "RejectedError",
    "ServeResult",
    "ServerBusyError",
    "ServerError",
    "ServerHandle",
    "ServerStats",
    "SyncClient",
    "run_open_loop",
    "serve_in_thread",
]
