"""Burkhard–Keller tree: the classic index for integer-valued metrics.

Dictionaries under edit distance — half of the paper's Table 2 — are the
canonical BK-tree workload: children of a node are keyed by their integer
distance to the node's element, and the triangle inequality prunes every
child bucket ``b`` with ``|b - d(q, v)| > r``.  Included as a substrate
baseline alongside the vector-oriented trees.

The tree lives on a flat array substrate: node elements in one vector and
children in a CSR table of ``(bucket key, child node)`` pairs, not linked
Python objects.  The build is bulk — each node evaluates one batched
distance vector from its element to its whole point set and partitions by
integer distance, producing exactly the tree the classic one-insert-at-a-
time loop builds (every point is compared once against each ancestor
element) without the per-pair Python overhead.  Queries traverse
level-synchronously over an explicit frontier of ``(query, node)`` pairs,
which :meth:`_range_batch_impl` / :meth:`_knn_batch_impl` evaluate with a
few :func:`~repro.index.batching.frontier_distances` calls per level —
answer-for-answer and count-for-count identical to the single-query path.

kNN traversal is level-synchronous rather than best-first: the
pruning radius converges once per level instead of once per node, so
a single kNN query evaluates some 25-60% more distances than the
classic bound-ordered descent did — the price of a batched traversal
whose answers *and* evaluation counts are identical on both query
surfaces.  Range queries visit the same node set either way.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.base import Index, Neighbor, NeighborArrays
from repro.index.batching import (
    BatchKnnState,
    frontier_distances,
    heap_neighbors,
    heap_radius,
    offer,
    rows_from_pairs,
    take_points,
)

__all__ = ["BKTree"]


class BKTree(Index):
    """Burkhard–Keller tree over an integer-valued metric.

    Raises at build time if the metric produces a non-integer distance:
    the bucket structure is only correct for discrete metrics (edit
    distance, Hamming, prefix, tree metrics with integer weights).
    """

    def _build(self) -> None:
        elements: List[int] = []
        child_lists: List[List[Tuple[int, int]]] = []
        # Work list of (members, parent node, bucket key); members keep
        # insertion order, so node elements match the incremental build.
        pending: List[Tuple[List[int], int, int]] = [
            (list(range(len(self.points))), -1, 0)
        ]
        head = 0
        while head < len(pending):
            members, parent, bucket = pending[head]
            head += 1
            node = len(elements)
            elements.append(members[0])
            child_lists.append([])
            if parent >= 0:
                child_lists[parent].append((bucket, node))
            rest = members[1:]
            if not rest:
                continue
            # One distance vector partitions the node's whole point set.
            row = self.metric.batch_distances(
                [self.points[members[0]]],
                take_points(self.points, np.asarray(rest, dtype=np.int64)),
            )[0]
            buckets: Dict[int, List[int]] = {}
            for index, d in zip(rest, self._integer_distances(row)):
                buckets.setdefault(int(d), []).append(index)
            for key in sorted(buckets):
                pending.append((buckets[key], node, key))

        offsets = np.zeros(len(elements) + 1, dtype=np.int64)
        flat_buckets: List[int] = []
        flat_nodes: List[int] = []
        for i, children in enumerate(child_lists):
            children.sort()
            offsets[i + 1] = offsets[i] + len(children)
            flat_buckets.extend(bucket for bucket, _ in children)
            flat_nodes.extend(child for _, child in children)
        self._element = np.asarray(elements, dtype=np.int64)
        self._child_offsets = offsets
        self._child_buckets = np.asarray(flat_buckets, dtype=np.int64)
        self._child_nodes = np.asarray(flat_nodes, dtype=np.int64)

    @staticmethod
    def _integer_distances(row: np.ndarray) -> np.ndarray:
        """Round a distance vector, rejecting non-integer metrics."""
        rounded = np.rint(row)
        if row.size:
            gap = np.abs(row - rounded)
            worst = int(np.argmax(gap))
            if gap[worst] > 1e-9:
                raise ValueError(
                    "BKTree requires an integer-valued metric, "
                    f"got d={float(row[worst])}"
                )
        return rounded.astype(np.int64)

    def _distance_int(self, x: Any, y: Any) -> int:
        d = self.metric.distance(x, y)
        rounded = int(round(d))
        if abs(d - rounded) > 1e-9:
            raise ValueError(
                f"BKTree requires an integer-valued metric, got d={d}"
            )
        return rounded

    def _node_children(self, node: int) -> range:
        return range(
            int(self._child_offsets[node]), int(self._child_offsets[node + 1])
        )

    # ------------------------------------------------------------------
    # Single-query traversal: the same level-synchronous algorithm the
    # batched path vectorizes, with scalar metric calls.
    # ------------------------------------------------------------------

    def _range_impl(self, query: Any, radius: float) -> List[Neighbor]:
        results: List[Neighbor] = []
        frontier = [0]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                d = self._distance_int(query, self.points[self._element[node]])
                if d <= radius:
                    results.append(Neighbor(float(d), int(self._element[node])))
                for slot in self._node_children(node):
                    # Triangle inequality: any x in this subtree satisfies
                    # |d(q, v) - bucket| <= d(q, x).
                    if abs(d - self._child_buckets[slot]) <= radius:
                        next_frontier.append(int(self._child_nodes[slot]))
            frontier = next_frontier
        return results

    def _knn_impl(self, query: Any, k: int) -> List[Neighbor]:
        heap: List[tuple] = []
        frontier = [0]
        while frontier:
            distances = [
                self._distance_int(query, self.points[self._element[node]])
                for node in frontier
            ]
            for node, d in zip(frontier, distances):
                offer(heap, k, float(d), int(self._element[node]))
            # Prune with the post-level radius: children survive only if
            # their bucket ring can still intersect the query ball.
            r = heap_radius(heap, k)
            next_frontier: List[int] = []
            for node, d in zip(frontier, distances):
                for slot in self._node_children(node):
                    if abs(d - self._child_buckets[slot]) <= r:
                        next_frontier.append(int(self._child_nodes[slot]))
            frontier = next_frontier
        return heap_neighbors(heap)

    # ------------------------------------------------------------------
    # Batched traversal: per level, one frontier_distances evaluation of
    # every surviving (query, node) pair, then a vectorized bucket prune
    # over the CSR child table.
    # ------------------------------------------------------------------

    def _surviving_children(
        self,
        query_ids: np.ndarray,
        nodes: np.ndarray,
        distances: np.ndarray,
        bounds: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expand each pair's CSR children, keeping intersecting buckets."""
        counts = self._child_offsets[nodes + 1] - self._child_offsets[nodes]
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        pair = np.repeat(np.arange(nodes.shape[0]), counts)
        within = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        slots = np.repeat(self._child_offsets[nodes], counts) + within
        keep = (
            np.abs(distances[pair] - self._child_buckets[slots])
            <= bounds[pair]
        )
        return query_ids[pair[keep]], self._child_nodes[slots[keep]]

    def _range_batch_impl(
        self, queries: Sequence[Any], radius: float
    ) -> NeighborArrays:
        n_queries = len(queries)
        hit_queries: List[np.ndarray] = []
        hit_indices: List[np.ndarray] = []
        hit_distances: List[np.ndarray] = []
        query_ids = np.arange(n_queries, dtype=np.int64)
        nodes = np.zeros(n_queries, dtype=np.int64)
        while query_ids.size:
            distances = self._integer_distances(
                frontier_distances(
                    self.metric, queries, self.points,
                    query_ids, self._element[nodes],
                )
            )
            hits = np.flatnonzero(distances <= radius)
            if hits.shape[0]:
                hit_queries.append(query_ids[hits])
                hit_indices.append(self._element[nodes[hits]])
                hit_distances.append(distances[hits].astype(np.float64))
            query_ids, nodes = self._surviving_children(
                query_ids, nodes, distances,
                np.full(query_ids.shape[0], radius),
            )
        if not hit_queries:
            return NeighborArrays.empty(n_queries)
        return rows_from_pairs(
            n_queries,
            np.concatenate(hit_queries),
            np.concatenate(hit_indices),
            np.concatenate(hit_distances),
        )

    def _knn_batch_impl(
        self, queries: Sequence[Any], k: int
    ) -> NeighborArrays:
        n_queries = len(queries)
        state = BatchKnnState(n_queries, k)
        query_ids = np.arange(n_queries, dtype=np.int64)
        nodes = np.zeros(n_queries, dtype=np.int64)
        while query_ids.size:
            distances = self._integer_distances(
                frontier_distances(
                    self.metric, queries, self.points,
                    query_ids, self._element[nodes],
                )
            )
            state.offer_pairs(
                query_ids, self._element[nodes], distances.astype(np.float64)
            )
            query_ids, nodes = self._surviving_children(
                query_ids, nodes, distances, state.radii[query_ids]
            )
        return state.results()

    def _knn_approx_batch_impl(
        self, queries: Sequence[Any], k: int, budget: Optional[int]
    ) -> NeighborArrays:
        # Exact search; the budget is ignored, as in the single-query path.
        return self._knn_batch_impl(queries, k)
