"""Zero-copy dataset shipping to worker processes via shared memory.

Process-pool parallelism normally pays to pickle the database into every
worker; for the paper's workloads (a million vectors, a quarter-million
dictionary words) that copy dwarfs the per-shard work being distributed.
This module publishes the big payloads **once** into
:mod:`multiprocessing.shared_memory` segments and ships only tiny
descriptors:

- :class:`SharedArray` — one ndarray in one segment; workers attach and
  view it in place (read-only), no copy;
- :class:`SharedDataset` — a whole database: vector matrices ship as
  their array, string collections ship as their
  :class:`~repro.metrics.encoding.EncodedStrings` code-point matrix plus
  length vector (decoded back to ``str`` lazily, once per worker), and
  anything else falls back to one pickled blob in shared memory (still
  shipped once, not per task).

Descriptors are picklable and resolve through a per-process attachment
cache, so a worker maps each segment a single time no matter how many
tasks touch it.  The publishing process owns the segments: call
:meth:`SharedDataset.unlink` (or use the context manager) when the
workers are done.  In the publishing process itself ``resolve()``
returns the original object — the serial executor never touches shared
memory at all.

Segment names encode the owner: ``repro-{pid}-{hex}``.  That makes
leaks attributable (an ``ls /dev/shm`` names the guilty process) and
recoverable — every owned segment is registered for ``atexit`` cleanup,
and :func:`sweep_stale_segments` unlinks ``repro-*`` segments whose
owning pid is gone, so a SIGKILL'd owner cannot permanently strand
shared memory for the processes that come after it.  The first publish
in a process runs the sweep once, opportunistically.
"""

from __future__ import annotations

import atexit
import os
import pickle
import re
import secrets
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SharedArray",
    "SharedDataset",
    "consume_array",
    "discard_array",
    "decode_strings",
    "sweep_stale_segments",
]

#: Per-process cache of attached segments: name -> (SharedMemory, ndarray).
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Per-process cache of resolved datasets: lead segment name -> points.
_RESOLVED: Dict[str, Any] = {}

#: Segments this process published and has not yet unlinked.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}

#: Owner-encoding segment name: repro-{pid}-{hex}.
_SEGMENT_RE = re.compile(r"^repro-(\d+)-[0-9a-f]+$")

_SWEPT = False


def _segment_name() -> str:
    """A fresh segment name encoding the owning pid."""
    return f"repro-{os.getpid()}-{secrets.token_hex(4)}"


def _cleanup_owned() -> None:
    """Unlink every still-owned segment (atexit: owner is going away)."""
    for name in list(_OWNED):
        shm = _OWNED.pop(name, None)
        if shm is None:
            continue
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


atexit.register(_cleanup_owned)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    return True


def sweep_stale_segments(root: str = "/dev/shm") -> List[str]:
    """Unlink ``repro-*`` segments whose owning process is dead.

    Crashed owners (SIGKILL, OOM) never run their ``atexit`` hooks, so
    their segments survive in ``/dev/shm`` until reboot.  Each segment
    name carries the owner's pid; any segment whose pid no longer exists
    is unlinked here.  Returns the names removed.  A no-op (empty list)
    where ``root`` does not exist — shared memory is then backed by some
    other mechanism and no stale-name inventory is available.
    """
    removed = []
    try:
        entries = os.listdir(root)
    except OSError:
        return removed
    for entry in entries:
        match = _SEGMENT_RE.match(entry)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(root, entry))
            removed.append(entry)
        except OSError:
            continue
    return removed


def _sweep_once() -> None:
    global _SWEPT
    if not _SWEPT:
        _SWEPT = True
        sweep_stale_segments()


def _attach(name: str, dtype: str, shape: Tuple[int, ...]) -> np.ndarray:
    """Attach to a published segment and view it as a read-only array.

    On Python 3.13+ the attachment opts out of resource tracking: the
    publishing process owns the segment's lifetime.  On earlier versions
    attaching re-registers the name with the resource tracker, which is
    harmless for pool workers — they inherit the *parent's* tracker, whose
    name set deduplicates, so the segment is still unlinked exactly once,
    by the owner.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= is 3.13+; see docstring for older behavior
        shm = shared_memory.SharedMemory(name=name)
    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    array.flags.writeable = False
    _ATTACHED[name] = (shm, array)
    return array


def _read_once(name: str, dtype: str, shape: Tuple[int, ...]) -> np.ndarray:
    """Copy a segment's contents out and close the mapping immediately.

    For ephemeral payloads: the per-process caches are never touched, so
    the worker holds no reference once the call returns and the owner's
    ``unlink`` genuinely frees the memory everywhere.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:  # already mapped long-lived: just view it
        return cached[1]
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= is 3.13+; see _attach for older behavior
        shm = shared_memory.SharedMemory(name=name)
    try:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        return np.array(view, copy=True)
    finally:
        shm.close()


class SharedArray:
    """One ndarray published in shared memory, addressable by descriptor.

    Pickling carries only ``(name, dtype, shape)``; :meth:`array` returns
    the local copy in the owner process and an attached read-only view in
    workers.
    """

    def __init__(
        self,
        name: str,
        dtype: str,
        shape: Tuple[int, ...],
        _shm: Optional[shared_memory.SharedMemory] = None,
        _local: Optional[np.ndarray] = None,
    ):
        self.name = name
        self.dtype = dtype
        self.shape = tuple(shape)
        self._shm = _shm
        self._local = _local

    @classmethod
    def publish(cls, array: np.ndarray) -> "SharedArray":
        _sweep_once()
        array = np.ascontiguousarray(array)
        while True:
            try:
                shm = shared_memory.SharedMemory(
                    name=_segment_name(),
                    create=True,
                    size=max(1, array.nbytes),
                )
                break
            except FileExistsError:  # token collision: pick another name
                continue
        _OWNED[shm.name] = shm
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm.name, array.dtype.str, array.shape, shm, view)

    def array(self) -> np.ndarray:
        if self._local is not None:
            return self._local
        return _attach(self.name, self.dtype, self.shape)

    def unlink(self) -> None:
        """Release the segment (owner side); safe to call twice."""
        if self._shm is not None:
            self._local = None
            _OWNED.pop(self.name, None)
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None

    def close_local(self) -> None:
        """Drop the owner's mapping but keep the segment alive.

        For reply payloads consumed (and unlinked) by another process:
        the publishing worker frees its own mapping as soon as the
        descriptor is on the wire, while the ``atexit`` registration
        keeps covering the segment in case the consumer never reads it.
        """
        if self._shm is not None:
            self._local = None
            try:
                self._shm.close()
            except OSError:
                pass

    def __reduce__(self):
        return (SharedArray, (self.name, self.dtype, self.shape))

    def __repr__(self) -> str:
        return f"SharedArray({self.name!r}, {self.dtype}, {self.shape})"


def discard_array(descriptor: SharedArray) -> None:
    """Unlink a reply segment without reading it (receiver side).

    For stale replies the supervisor drops: the worker that published
    the segment has already closed its mapping, so unlinking here is
    what actually frees the memory.  Missing segments are ignored.
    """
    try:
        try:
            shm = shared_memory.SharedMemory(name=descriptor.name, track=False)
        except TypeError:  # track= is 3.13+; see _attach for older behavior
            shm = shared_memory.SharedMemory(name=descriptor.name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def consume_array(descriptor: SharedArray) -> np.ndarray:
    """Copy a reply segment's array out, then unlink it (receiver side).

    The handshake for one-shot worker-to-supervisor payloads: the worker
    publishes, ships the descriptor, and drops its mapping; the
    supervisor copies the data out here and removes the segment.  Raises
    ``FileNotFoundError`` if the segment is already gone — callers treat
    that as a corrupt reply.
    """
    try:
        data = _read_once(descriptor.name, descriptor.dtype, descriptor.shape)
    finally:
        discard_array(descriptor)
    return data


def decode_strings(codes: np.ndarray, lengths: np.ndarray) -> List[str]:
    """Rebuild the string list behind an encoded code-point matrix.

    The inverse of :meth:`repro.metrics.encoding.EncodedStrings.from_strings`:
    one flat UTF-32 decode plus per-string slicing, with a ``chr`` fallback
    for lone surrogates (which UTF-32 refuses to round-trip).
    """
    n = lengths.shape[0]
    if n == 0:
        return []
    mask = np.arange(codes.shape[1])[None, :] < lengths[:, None]
    flat = np.ascontiguousarray(codes[mask], dtype="<u4")
    try:
        text = flat.tobytes().decode("utf-32-le")
    except UnicodeDecodeError:
        text = "".join(chr(int(c)) for c in flat)
    out = []
    position = 0
    for length in lengths:
        out.append(text[position : position + int(length)])
        position += int(length)
    return out


class SharedDataset:
    """A whole database published once for every worker to read in place.

    ``kind`` selects the wire format: ``"array"`` (vector databases),
    ``"strings"`` (code-point matrix + lengths, decoded lazily per
    worker), or ``"pickle"`` (arbitrary objects as one shared blob).
    Resolution is cached per process, so the decode/unpickle cost is paid
    once per worker, not once per task.

    ``ephemeral=True`` marks short-lived payloads (per-call query sets):
    workers materialize them with a copy-and-close read that touches no
    per-process cache, so the segment really is gone — from every
    process — once the owner unlinks it.  Long-lived payloads (the
    database, built shard replicas) stay cached and mapped.
    """

    def __init__(self, kind: str, arrays: Sequence[SharedArray],
                 _local: Any = None, ephemeral: bool = False):
        self.kind = kind
        self.arrays = list(arrays)
        self.ephemeral = ephemeral
        self._local = _local

    @classmethod
    def local(cls, points: Any) -> "SharedDataset":
        """Wrap a database without touching shared memory.

        The in-process counterpart of :meth:`publish` for serial
        executors: ``resolve()`` returns ``points`` and ``unlink()`` is a
        no-op, so serial runs never allocate a segment (or require any
        ``/dev/shm`` space).  Local datasets cannot be shipped to
        workers — pickling one raises.
        """
        return cls("local", [], points)

    @classmethod
    def publish(cls, points: Any, ephemeral: bool = False) -> "SharedDataset":
        if isinstance(points, np.ndarray):
            return cls(
                "array", [SharedArray.publish(points)], points, ephemeral
            )
        if isinstance(points, (list, tuple)) and points and all(
            isinstance(p, str) for p in points
        ):
            from repro.metrics.encoding import encode_strings

            encoded = encode_strings(points)
            return cls(
                "strings",
                [
                    SharedArray.publish(encoded.codes),
                    SharedArray.publish(encoded.lengths),
                ],
                points,
                ephemeral,
            )
        blob = np.frombuffer(
            pickle.dumps(points, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8,
        )
        return cls("pickle", [SharedArray.publish(blob)], points, ephemeral)

    def _materialize(self, arrays: Sequence[np.ndarray]) -> Any:
        if self.kind == "array":
            return arrays[0]
        if self.kind == "strings":
            return decode_strings(arrays[0], arrays[1])
        if self.kind == "pickle":
            return pickle.loads(arrays[0].tobytes())
        raise ValueError(  # pragma: no cover - publish() controls the kinds
            f"unknown shared dataset kind {self.kind!r}"
        )

    def resolve(self) -> Any:
        """Return the database: the original in the owner, a shared view
        (or per-worker reconstruction) elsewhere."""
        if self._local is not None:
            return self._local
        if self.ephemeral:
            # Copy-and-close read: nothing enters the per-process caches,
            # no mapping outlives this call.
            return self._materialize(
                [_read_once(a.name, a.dtype, a.shape) for a in self.arrays]
            )
        token = self.arrays[0].name
        cached = _RESOLVED.get(token)
        if cached is not None:
            return cached
        points = self._materialize([a.array() for a in self.arrays])
        _RESOLVED[token] = points
        return points

    def unlink(self) -> None:
        """Release every segment (owner side); safe to call twice."""
        for array in self.arrays:
            array.unlink()

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()

    def __reduce__(self):
        if self.kind == "local":
            raise TypeError(
                "a local (unpublished) SharedDataset cannot be shipped to "
                "workers; use SharedDataset.publish() for pool execution"
            )
        return (SharedDataset, (self.kind, self.arrays, None, self.ephemeral))

    def __repr__(self) -> str:
        return f"SharedDataset(kind={self.kind!r}, segments={len(self.arrays)})"
