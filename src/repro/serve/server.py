"""The asyncio query server: the library's front door for live traffic.

:class:`QueryServer` listens on a unix socket (or TCP host/port),
speaks the length-prefixed binary protocol of
:mod:`repro.serve.protocol`, and answers every query op through one
shared :class:`~repro.serve.batcher.MicroBatcher` over any
:class:`~repro.index.base.Index` — a plain index, a
:class:`~repro.index.sharded.ShardedIndex`, resident worker pools
included.  Concurrent clients coalesce into batching windows, so the
batch engine's throughput applies to online load.

Connections are cheap: one reader loop per connection decodes frames
and spawns a task per request, so a single connection can keep many
requests in flight (responses carry the request id and may return out
of order).  Responses are written under a per-connection lock to keep
frames whole.

**Graceful drain.**  :meth:`drain` (wired to SIGTERM/SIGINT by
:meth:`install_signal_handlers`) stops accepting connections, makes the
batcher reject new work, flushes every admitted window — zero accepted
requests are dropped — then closes client connections and, if the
index exposes ``close()`` (sharded indexes with pools or resident
workers), closes that too.  Health probes (``PING``) keep answering
during the drain and report ``draining=True`` so load balancers can
move traffic away.

Startup sweeps ``/dev/shm`` for stale ``repro-*`` segments left behind
by crashed former owners (:func:`~repro.parallel.sharedmem.sweep_stale_segments`)
— a long-running server must not slowly lose its shm budget to the
corpses of its predecessors.

For embedding in tests and benches, :func:`serve_in_thread` runs a
whole server on a daemon thread with its own event loop and returns a
handle whose ``stop()`` performs the same graceful drain.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import traceback
from typing import List, Optional

import numpy as np

from repro.index.base import Index, NeighborArrays
from repro.parallel.sharedmem import sweep_stale_segments
from repro.serve import protocol
from repro.serve.batcher import BatchConfig, MicroBatcher, RejectedError
from repro.serve.stats import ServerStats

__all__ = ["QueryServer", "ServerHandle", "serve_in_thread"]

_OPS = {
    protocol.OP_KNN: "knn",
    protocol.OP_RANGE: "range",
    protocol.OP_KNN_APPROX: "knn-approx",
}


def _dataset_kind(index: Index) -> int:
    """The query payload kind this index's database admits."""
    points = index.points
    if isinstance(points, np.ndarray):
        return protocol.KIND_VECTORS
    if len(points) and isinstance(points[0], str):
        return protocol.KIND_STRINGS
    raise TypeError(
        "QueryServer serves vector (ndarray) or string databases; got "
        f"points of type {type(points).__name__}"
    )


class QueryServer:
    """Serve one index over a socket with micro-batched execution.

    Exactly one of ``unix_path`` or ``(host, port)`` selects the
    listener.  The server adopts ``index`` for its lifetime and closes
    it on drain when it has a ``close()`` (set ``close_index=False`` to
    keep it alive for the caller).  ``config`` tunes the batching
    windows and admission bound (:class:`~repro.serve.batcher.BatchConfig`).
    """

    def __init__(
        self,
        index: Index,
        *,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        config: Optional[BatchConfig] = None,
        close_index: bool = True,
    ):
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of unix_path or host/port")
        if host is not None and port is None:
            raise ValueError("a TCP listener needs both host and port")
        self.index = index
        self.kind = _dataset_kind(index)
        self.unix_path = unix_path
        self.host = host
        self.port = port
        self.stats = ServerStats()
        self.batcher = MicroBatcher(index, config=config, stats=self.stats)
        self._close_index = close_index
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: List[asyncio.StreamWriter] = []
        self._conn_tasks: set = set()
        self._drained = asyncio.Event()
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the batching scheduler."""
        if self._server is not None:
            raise RuntimeError("server already started")
        # A long-running service reclaims the shm budget of crashed
        # predecessors before allocating its own segments.
        sweep_stale_segments()
        self.batcher.start()
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )

    @property
    def bound_port(self) -> Optional[int]:
        """The kernel-assigned port when started with ``port=0``."""
        if self._server is None or self.host is None:
            return None
        return self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        """Drain gracefully on SIGTERM/SIGINT (main-thread loops only)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )

    async def serve_until_drained(self) -> None:
        """Block until a drain (signal- or call-initiated) completes."""
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, flush, close (idempotent).

        Order matters: the listener closes first (no new connections),
        then the batcher drains — rejecting new requests while every
        *accepted* one completes and its response is written — then
        client connections close, then the index's own pool/shm
        lifecycle runs.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Flush every admitted window; submissions during this phase
        # are rejected with retry_after, and in-flight response writes
        # finish inside the connection tasks we gather below.
        await self.batcher.drain()
        if self._conn_tasks:
            await asyncio.gather(
                *tuple(self._conn_tasks), return_exceptions=True
            )
        for writer in list(self._connections):
            writer.close()
        if self._close_index and hasattr(self.index, "close"):
            self.index.close()
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        self._drained.set()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.append(writer)
        write_lock = asyncio.Lock()
        request_tasks: set = set()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                try:
                    length = protocol.frame_length(header)
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    break
                except protocol.ProtocolError as error:
                    await self._send(
                        writer, write_lock,
                        protocol.encode_response(
                            0, protocol.STATUS_ERROR, message=str(error)
                        ),
                    )
                    break
                request_task = asyncio.ensure_future(
                    self._handle_frame(payload, writer, write_lock)
                )
                request_tasks.add(request_task)
                request_task.add_done_callback(request_tasks.discard)
            if request_tasks:
                await asyncio.gather(
                    *tuple(request_tasks), return_exceptions=True
                )
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            if writer in self._connections:
                self._connections.remove(writer)
            writer.close()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame: bytes,
    ) -> None:
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_frame(
        self,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            request = protocol.decode_request(payload)
        except protocol.ProtocolError as error:
            await self._send(
                writer, write_lock,
                protocol.encode_response(
                    0, protocol.STATUS_ERROR, message=str(error)
                ),
            )
            return
        frame = await self._answer(request)
        await self._send(writer, write_lock, frame)

    async def _answer(self, request: protocol.Request) -> bytes:
        """Compute one request's response frame."""
        if request.op == protocol.OP_PING:
            return protocol.encode_response(
                request.request_id, protocol.STATUS_PONG,
                pid=os.getpid(), draining=self._draining,
            )
        if request.op == protocol.OP_STATS:
            return protocol.encode_response(
                request.request_id, protocol.STATUS_STATS,
                message=self.stats.json(),
            )
        error = self._validate_query(request)
        if error is not None:
            return protocol.encode_response(
                request.request_id, protocol.STATUS_ERROR, message=error
            )
        try:
            rows, degraded = await self.batcher.submit(
                _OPS[request.op],
                request.queries,
                k=request.k,
                radius=request.radius,
                budget=request.budget,
            )
        except RejectedError as rejection:
            return protocol.encode_response(
                request.request_id, protocol.STATUS_REJECTED,
                retry_after=rejection.retry_after,
            )
        except Exception:
            self.stats.note_error()
            return protocol.encode_response(
                request.request_id, protocol.STATUS_ERROR,
                message=traceback.format_exc(limit=8),
            )
        return self._encode_ok(request.request_id, rows, degraded)

    def _encode_ok(
        self, request_id: int, rows: NeighborArrays, degraded: bool
    ) -> bytes:
        return protocol.encode_response(
            request_id,
            protocol.STATUS_OK,
            flags=protocol.FLAG_DEGRADED if degraded else 0,
            arrays=(rows.distances, rows.indices, rows.offsets),
        )

    def _validate_query(self, request: protocol.Request) -> Optional[str]:
        """Pre-admission validation, so one bad request cannot poison a
        coalesced engine call for its window-mates."""
        if request.kind != self.kind:
            want = (
                "vectors" if self.kind == protocol.KIND_VECTORS else "strings"
            )
            return f"this server indexes {want}; wrong query payload kind"
        if request.op in (protocol.OP_KNN, protocol.OP_KNN_APPROX):
            if request.k < 1:
                return f"k must be >= 1, got {request.k}"
        if request.op == protocol.OP_RANGE:
            if not (request.radius >= 0):
                return f"radius must be >= 0, got {request.radius}"
        if request.op == protocol.OP_KNN_APPROX:
            if request.budget is not None and request.budget < 0:
                return f"budget must be >= 0, got {request.budget}"
        if self.kind == protocol.KIND_VECTORS and request.n_queries:
            width = self.index.points.shape[1]
            if request.queries.shape[1] != width:
                return (
                    f"query vectors have dimension "
                    f"{request.queries.shape[1]}, index has {width}"
                )
        return None


class ServerHandle:
    """A running :func:`serve_in_thread` server: address + stop switch."""

    def __init__(self, server: QueryServer, loop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def unix_path(self) -> Optional[str]:
        return self.server.unix_path

    @property
    def port(self) -> Optional[int]:
        return self.server.bound_port

    def stats(self) -> ServerStats:
        return self.server.stats

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server gracefully and join its thread (idempotent)."""
        if self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    index: Index,
    *,
    unix_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    config: Optional[BatchConfig] = None,
    close_index: bool = True,
) -> ServerHandle:
    """Run a :class:`QueryServer` on a daemon thread; return its handle.

    The embedding used by the test suite and benches: the caller's
    thread stays free to drive sync clients against the server.  The
    handle's ``stop()`` (or context-manager exit) performs the full
    graceful drain.
    """
    server = QueryServer(
        index, unix_path=unix_path, host=host, port=port,
        config=config, close_index=close_index,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            try:
                await server.start()
            except BaseException as error:  # surface bind errors
                failure.append(error)
            finally:
                started.set()

        loop.run_until_complete(_start())
        if not failure:
            loop.run_forever()
        loop.close()

    thread = threading.Thread(
        target=_run, name="repro-serve", daemon=True
    )
    thread.start()
    started.wait()
    if failure:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise failure[0]
    return ServerHandle(server, loop, thread)
