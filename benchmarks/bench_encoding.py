"""Bench: extended storage encodings — packed ids, entropy, truncation.

Extensions beyond the paper's accounting (DESIGN.md §6):

- **measured** byte sizes of the bit-packed permutation-table encoding
  (not just the formula);
- entropy coding headroom below the fixed ``ceil(log2 N)`` width (the
  "more sophisticated structure" the paper alludes to);
- truncated permutations: census and storage as a function of prefix
  length, the direction later permutation indexes took.
"""

from __future__ import annotations

import numpy as np
from conftest import write_result

from repro.core.truncated import prefix_census_curve, prefix_storage_bits
from repro.datasets.sisap import load_database
from repro.datasets.vectors import uniform_vectors
from repro.index import DistPermIndex
from repro.metrics import EuclideanDistance


def test_packed_storage_measured_bytes(benchmark, results_dir):
    def run():
        database = load_database("colors", n=4000)
        index = DistPermIndex(
            database.points, database.metric, n_sites=12,
            rng=np.random.default_rng(0),
        )
        store = index.packed()
        return index, store

    index, store = benchmark.pedantic(run, rounds=1, iterations=1)
    n = len(index.points)
    naive_bytes = n * 12  # one byte per permutation entry
    # Bit-packing must realize (close to) the theoretical payload.
    theoretical_payload = (n * store.bit_width + 7) // 8
    assert store.payload_bytes() == theoretical_payload
    assert store.payload_bytes() < naive_bytes / 4
    # Round-trip safety at full scale.
    assert np.array_equal(store.permutations(), index.permutations)
    write_result(
        results_dir,
        "encoding_packed",
        "\n".join(
            [
                f"colors, n={n}, k=12: measured index payload",
                f"  naive bytes (1 B/entry)      : {naive_bytes}",
                f"  packed ids ({store.bit_width:>2} bits/elt)     : "
                f"{store.payload_bytes()} B",
                f"  permutation table            : "
                f"{store.table_codes.shape[0]} codes",
                f"  total (ids + 8 B/table code) : {store.total_bytes()} B",
            ]
        ),
    )


def test_entropy_headroom_across_databases(benchmark, results_dir):
    def run():
        reports = {}
        for name in ("colors", "listeria", "long", "nasa"):
            database = load_database(name)
            index = DistPermIndex(
                database.points, database.metric, n_sites=10,
                rng=np.random.default_rng(1),
            )
            reports[name] = index.entropy()
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["entropy headroom below the fixed-width table encoding (k=10):"]
    for name, report in reports.items():
        assert report.entropy_bits <= report.fixed_bits + 1e-9
        lines.append(f"  {name:>9}: {report.as_row()}")
    # Skewed real-ish distributions leave real headroom somewhere.
    assert any(r.savings_fraction > 0.05 for r in reports.values())
    write_result(results_dir, "encoding_entropy", "\n".join(lines))


def test_truncated_census_curves(benchmark, results_dir):
    def run():
        curves = {}
        rng = np.random.default_rng(2)
        for d in (2, 4, 8):
            points = uniform_vectors(20_000, d, rng)
            sites = points[rng.choice(20_000, size=12, replace=False)]
            curves[d] = prefix_census_curve(
                points, sites, EuclideanDistance()
            )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["distinct prefixes vs prefix length m (uniform cube, k=12):",
             "  m:   " + "  ".join(f"{m:>6}" for m in range(1, 13))]
    for d, curve in curves.items():
        values = [curve[m] for m in range(1, 13)]
        assert values == sorted(values)
        assert curve[11] == curve[12]  # last position is forced
        lines.append(
            f"  d={d}: " + "  ".join(f"{v:>6}" for v in values)
        )
        bits = [prefix_storage_bits(curve[m]) for m in (3, 6, 12)]
        lines.append(
            f"       bits/elt at m=3/6/12: {bits[0]} / {bits[1]} / {bits[2]}"
        )
    # Dimension ordering at every prefix length: higher-dimensional data
    # realizes more prefixes throughout the curve (m >= 2; m = 1 is the
    # order-1 Voronoi count, k for every d).
    for m in range(2, 13):
        assert curves[2][m] < curves[4][m] < curves[8][m], m
    write_result(results_dir, "encoding_truncated", "\n".join(lines))


def test_arrangement_engine_census(benchmark, results_dir):
    """Third-engine cross-check at bench scale: the exact rational
    arrangement census equals the LP census for k = 4 and 5, and achieves
    Table 1's N_{2,2}(k) on generic draws."""
    from repro.core.arrangement import count_euclidean_cells_arrangement
    from repro.core.counting import euclidean_permutation_count
    from repro.core.voronoi import count_euclidean_cells_exact

    def run():
        outcomes = []
        for k in (3, 4, 5):
            for seed in range(4):
                sites = np.random.default_rng(seed).random((k, 2))
                combinatorial = count_euclidean_cells_arrangement(sites)
                lp = count_euclidean_cells_exact(sites)
                outcomes.append((k, seed, combinatorial, lp))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["arrangement census vs LP census (k, seed, cells):"]
    for k, seed, combinatorial, lp in outcomes:
        assert combinatorial == lp == euclidean_permutation_count(2, k)
        lines.append(f"  k={k} seed={seed}: {combinatorial}")
    write_result(results_dir, "encoding_arrangement", "\n".join(lines))
