"""Tests for the List of Clusters index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index import LinearScan
from repro.index.listclusters import ListOfClusters
from repro.metrics import EuclideanDistance, LevenshteinDistance


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(21)
    return rng.random((300, 3)), rng.random((8, 3))


class TestExactness:
    def test_range_matches_linear(self, vectors):
        points, queries = vectors
        metric = EuclideanDistance()
        index = ListOfClusters(points, metric, bucket_size=12,
                               rng=np.random.default_rng(1))
        oracle = LinearScan(points, metric)
        for query in queries:
            for radius in (0.05, 0.2, 0.7):
                got = [(n.index, round(n.distance, 9))
                       for n in index.range_query(query, radius)]
                want = [(n.index, round(n.distance, 9))
                        for n in oracle.range_query(query, radius)]
                assert got == want

    def test_knn_matches_linear(self, vectors):
        points, queries = vectors
        metric = EuclideanDistance()
        index = ListOfClusters(points, metric, bucket_size=12,
                               rng=np.random.default_rng(2))
        oracle = LinearScan(points, metric)
        for query in queries:
            for k in (1, 7, 30):
                got = sorted(round(n.distance, 9)
                             for n in index.knn_query(query, k))
                want = sorted(round(n.distance, 9)
                              for n in oracle.knn_query(query, k))
                assert got == want

    def test_strings(self, small_words):
        metric = LevenshteinDistance()
        index = ListOfClusters(small_words, metric, bucket_size=4,
                               rng=np.random.default_rng(3))
        oracle = LinearScan(small_words, metric)
        for query in ("hold", "genes"):
            for radius in (1, 2, 3):
                got = [(n.index, n.distance)
                       for n in index.range_query(query, radius)]
                want = [(n.index, n.distance)
                        for n in oracle.range_query(query, radius)]
                assert got == want

    def test_self_query_radius_zero(self, vectors):
        points, _ = vectors
        index = ListOfClusters(points, EuclideanDistance(),
                               rng=np.random.default_rng(4))
        result = index.range_query(points[42], 0.0)
        assert any(n.index == 42 for n in result)


class TestStructure:
    def test_every_element_in_exactly_one_place(self, vectors):
        points, _ = vectors
        index = ListOfClusters(points, EuclideanDistance(), bucket_size=10,
                               rng=np.random.default_rng(5))
        seen = []
        for cluster in index.clusters:
            seen.append(cluster.center)
            seen.extend(cluster.bucket)
        assert sorted(seen) == list(range(len(points)))

    def test_bucket_radius_is_max_distance(self, vectors):
        points, _ = vectors
        metric = EuclideanDistance()
        index = ListOfClusters(points, metric, bucket_size=10,
                               rng=np.random.default_rng(6))
        for cluster in index.clusters:
            if not cluster.bucket:
                continue
            distances = [
                metric.distance(points[cluster.center], points[i])
                for i in cluster.bucket
            ]
            assert max(distances) == pytest.approx(cluster.radius)

    def test_bucket_size_respected(self, vectors):
        points, _ = vectors
        index = ListOfClusters(points, EuclideanDistance(), bucket_size=7,
                               rng=np.random.default_rng(7))
        assert all(len(c.bucket) <= 7 for c in index.clusters)

    def test_rejects_bad_bucket_size(self, vectors):
        points, _ = vectors
        with pytest.raises(ValueError):
            ListOfClusters(points, EuclideanDistance(), bucket_size=0)

    def test_prunes_on_small_radius(self, vectors):
        points, queries = vectors
        index = ListOfClusters(points, EuclideanDistance(), bucket_size=16,
                               rng=np.random.default_rng(8))
        index.reset_stats()
        for query in queries:
            index.range_query(query, 0.05)
        assert index.stats.distances_per_query < 0.9 * len(points)
