"""Bench: Figures 1-4 — Voronoi diagrams and bisector cell counts.

Fig 1: first-order Euclidean Voronoi diagram of 4 sites -> 4 cells.
Fig 2: second-order diagram refines it.
Fig 3: the full bisector system yields exactly 18 cells (= N_{2,2}(4)),
       fewer than both 2^6 sign patterns and 4! = 24 permutations.
Fig 4: the L1 bisector system also yields 18 cells, but a different
       permutation set.

Also serves as the engine ablation: the metric-agnostic grid census must
agree with the exact LP census on the Euclidean plane.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.counting import euclidean_permutation_count
from repro.core.voronoi import (
    count_euclidean_cells_exact,
    realized_permutations_euclidean_exact,
)
from repro.experiments.figures import figure_cell_counts, paperlike_sites


def test_figures_1_through_4(benchmark, results_dir):
    counts = benchmark.pedantic(
        lambda: figure_cell_counts(resolution=512),
        rounds=1,
        iterations=1,
    )
    # Fig 1: one cell per site.
    assert counts["order1_cells"] == 4
    # Fig 2: refinement.
    assert counts["order2_cells"] >= counts["order1_cells"]
    # Fig 3: 18 cells, matching Theorem 7, below 2^6 = 64 and 4! = 24.
    assert counts["l2_cells_exact"] == 18 == euclidean_permutation_count(2, 4)
    assert counts["l2_cells_grid"] == 18
    # Fig 4: L1 also 18 cells but a different permutation set.
    assert counts["l1_cells_grid"] == 18
    assert counts["l1_only"] and counts["l2_only"]

    lines = [
        "figure reproductions (4 sites in the unit square, seed 32):",
        f"  Fig 1 order-1 Voronoi cells (L2): {counts['order1_cells']} (paper: 4)",
        f"  Fig 2 order-2 Voronoi cells (L2): {counts['order2_cells']}",
        f"  Fig 3 bisector cells L2 exact:    {counts['l2_cells_exact']} (paper: 18)",
        f"  Fig 3 bisector cells L2 grid:     {counts['l2_cells_grid']}",
        f"  Fig 4 bisector cells L1 grid:     {counts['l1_cells_grid']} (paper: 18)",
        f"  permutations only in L1 diagram:  {len(counts['l1_only'])}",
        f"  permutations only in L2 diagram:  {len(counts['l2_only'])}",
    ]
    write_result(results_dir, "figures_1_4", "\n".join(lines))


def test_exact_lp_census_speed(benchmark):
    """Benchmark the 24-LP exact census of Figure 3."""
    sites = paperlike_sites()
    count = benchmark(lambda: count_euclidean_cells_exact(sites))
    assert count == 18


def test_engine_ablation_grid_vs_exact(benchmark, results_dir):
    """Ablation: grid census agrees with the exact LP census across many
    random 4-site layouts (grid can only undercount, and rarely does at
    this resolution)."""
    import numpy as np

    from repro.core.voronoi import realized_permutations_grid
    from repro.metrics.minkowski import EuclideanDistance

    def run():
        agreements = 0
        total = 0
        metric = EuclideanDistance()
        for seed in range(10):
            sites = np.random.default_rng(seed).random((4, 2))
            exact = realized_permutations_euclidean_exact(sites)
            grid = realized_permutations_grid(
                sites, metric, resolution=512, max_refinements=2, margin=4.0
            )
            assert grid <= exact
            agreements += grid == exact
            total += 1
        return agreements, total

    agreements, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agreements >= 8  # grid engine resolves almost all layouts
    write_result(
        results_dir,
        "ablation_grid_vs_exact",
        f"grid census == exact LP census on {agreements}/{total} random layouts",
    )
