"""Tests for document vectors and the SISAP database registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.documents import topic_document_vectors
from repro.datasets.sisap import (
    DATABASE_NAMES,
    PAPER_TABLE2,
    Database,
    load_database,
)
from repro.metrics import AngularDistance, EuclideanDistance, LevenshteinDistance


class TestTopicDocuments:
    def test_shape_nonnegative_nonzero(self):
        docs = topic_document_vectors(30, vocabulary=50, rng=np.random.default_rng(0))
        assert docs.shape == (30, 50)
        assert (docs >= 0).all()
        assert docs.any(axis=1).all()  # angular metric needs nonzero rows

    def test_deterministic(self):
        a = topic_document_vectors(10, rng=np.random.default_rng(1))
        b = topic_document_vectors(10, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_sparse_occupancy(self):
        """Documents drawing from few topics should not use the whole
        vocabulary."""
        docs = topic_document_vectors(
            20, vocabulary=400, n_topics=10, topics_per_doc=1,
            document_length=50, rng=np.random.default_rng(2),
        )
        occupancy = (docs > 0).mean()
        assert occupancy < 0.5

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            topic_document_vectors(0)
        with pytest.raises(ValueError):
            topic_document_vectors(5, n_topics=3, topics_per_doc=4)


class TestRegistry:
    def test_twelve_databases(self):
        assert len(DATABASE_NAMES) == 12

    def test_paper_counts_monotone_in_k(self):
        """Counts for nested site prefixes can only grow with k; the
        transcribed paper rows must respect that."""
        for name, meta in PAPER_TABLE2.items():
            counts = [meta["counts"][k] for k in range(3, 13)]
            assert counts == sorted(counts), name

    def test_paper_metadata_spot_checks(self):
        assert PAPER_TABLE2["Dutch"]["n"] == 229328
        assert PAPER_TABLE2["short"]["rho"] == pytest.approx(808.739)
        assert PAPER_TABLE2["colors"]["counts"][12] == 4408

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_database("mystery")


class TestLoadDatabase:
    @pytest.mark.parametrize("name", ["English", "listeria"])
    def test_string_databases(self, name):
        database = load_database(name, n=300)
        assert isinstance(database, Database)
        assert len(database) == 300
        assert isinstance(database.metric, LevenshteinDistance)
        assert all(isinstance(p, str) for p in database.points)

    @pytest.mark.parametrize("name,dim", [("colors", 112), ("nasa", 20)])
    def test_vector_databases(self, name, dim):
        database = load_database(name, n=300)
        assert database.points.shape == (300, dim)
        assert isinstance(database.metric, EuclideanDistance)

    @pytest.mark.parametrize("name", ["long", "short"])
    def test_document_databases(self, name):
        database = load_database(name, n=200)
        assert database.points.shape[0] == 200
        assert isinstance(database.metric, AngularDistance)

    def test_colors_rows_are_histograms(self):
        database = load_database("colors", n=100)
        sums = database.points.sum(axis=1)
        np.testing.assert_allclose(sums, np.ones(100))
        assert (database.points >= 0).all()

    def test_default_size_caps(self):
        database = load_database("long")
        assert len(database) == 1265  # paper size, smaller than the cap
        assert load_database("listeria").points  # smaller override applies

    def test_scale_parameter(self):
        database = load_database("English", scale=0.01)
        assert len(database) == int(np.ceil(69069 * 0.01))

    def test_seeded_reproducibility(self):
        a = load_database("nasa", n=50, seed=5)
        b = load_database("nasa", n=50, seed=5)
        np.testing.assert_array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = load_database("nasa", n=50, seed=5)
        b = load_database("nasa", n=50, seed=6)
        assert not np.array_equal(a.points, b.points)

    def test_paper_metadata_forwarded(self):
        database = load_database("colors", n=50)
        assert database.paper_n == 112544
        assert database.paper_rho == pytest.approx(2.745)
        assert "L2" in database.description
