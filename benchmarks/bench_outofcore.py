"""Bench: the out-of-core engine — mapped code stores vs RAM-resident.

Measures what memory-mapping the Corollary-8 code section actually buys
and costs:

- **mmap-vs-RAM throughput** — ``knn_approx`` batches against the same
  version-3 payload loaded both ways, across a size ladder.  Each
  measurement runs in its own subprocess so ``ru_maxrss`` is the peak
  RSS of exactly that configuration.
- **Bounded decoded residency** — every mmap measurement loads a
  dataset whose decoded code section is at least **4x** the decoded-
  block LRU budget and asserts the store's peak decoded residency
  stayed within the budget.
- **Streaming census** — a disk-resident ASCII database censused chunk
  by chunk (:func:`repro.parallel.census.streaming_census`) must
  produce counts identical to the in-memory sharded census.

The guards are armed in *every* mode, including ``--smoke`` (CI):
byte-identical mmap answers, the residency bound, and census equality
all assert before any JSON is written.

    PYTHONPATH=src python benchmarks/bench_outofcore.py           # full
    PYTHONPATH=src python benchmarks/bench_outofcore.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.datasets.io import iter_vector_chunks, save_vectors  # noqa: E402
from repro.index import DistPermIndex  # noqa: E402
from repro.index.serialize import load_distperm, save_distperm  # noqa: E402
from repro.metrics import EuclideanDistance  # noqa: E402
from repro.parallel.census import sharded_census, streaming_census  # noqa: E402

K_SITES = 8
DIM = 8
KNN = 10
BUDGET = 200
N_QUERIES = 64
SEED = 20080408
#: Decoded code section must be at least this multiple of the LRU budget.
RESIDENCY_FACTOR = 4
SIZES_FULL = (20_000, 50_000, 100_000, 200_000)
SIZES_SMOKE = (4_096,)
CENSUS_CHUNK_ROWS = 4_096


def _cache_budget(n: int) -> int:
    """An LRU budget the decoded section exceeds by RESIDENCY_FACTOR."""
    return max(8192, (n * 8) // RESIDENCY_FACTOR)


def _digest(arrays) -> str:
    h = hashlib.sha256()
    h.update(arrays.distances.tobytes())
    h.update(arrays.indices.tobytes())
    h.update(arrays.offsets.tobytes())
    return h.hexdigest()


def _build_payload(points: np.ndarray, path: Path) -> None:
    index = DistPermIndex(
        points, EuclideanDistance(), n_sites=K_SITES,
        rng=np.random.default_rng(SEED),
    )
    save_distperm(path, index)


def _queries(rng: np.random.Generator) -> np.ndarray:
    return rng.random((N_QUERIES, DIM))


def _measure_inprocess(points, payload, backing, cache_bytes):
    """Load ``payload`` under ``backing``, query it, and report."""
    kwargs = {}
    if backing == "mmap":
        kwargs = {"backing": "mmap", "cache_bytes": cache_bytes}
    index = load_distperm(payload, points, EuclideanDistance(), **kwargs)
    try:
        queries = _queries(np.random.default_rng(SEED + 1))
        index.knn_approx_batch_arrays(queries, KNN, budget=BUDGET)  # warm
        start = time.perf_counter()
        arrays = index.knn_approx_batch_arrays(queries, KNN, budget=BUDGET)
        elapsed = time.perf_counter() - start
        result = {
            "backing": backing,
            "elapsed_s": round(elapsed, 6),
            "qps": round(N_QUERIES / elapsed, 2) if elapsed > 0 else None,
            "digest": _digest(arrays),
            "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }
        store = getattr(index, "code_store", None)
        if store is not None:
            result["decoded_bytes_total"] = store.decoded_bytes_total()
            result["peak_cache_bytes"] = store.peak_cache_bytes
            result["cache_bytes"] = store.cache_bytes
            result["cache_hits"] = store.cache_hits
            result["cache_misses"] = store.cache_misses
            if store.peak_cache_bytes > store.cache_bytes:
                raise AssertionError(
                    f"peak decoded residency {store.peak_cache_bytes} "
                    f"exceeds the {store.cache_bytes}-byte budget"
                )
            if store.decoded_bytes_total() < RESIDENCY_FACTOR * cache_bytes:
                raise AssertionError(
                    f"decoded section {store.decoded_bytes_total()}B is "
                    f"not >= {RESIDENCY_FACTOR}x the {cache_bytes}B budget "
                    f"— the bench would not exercise eviction"
                )
        return result
    finally:
        closer = getattr(index, "close", None)
        if callable(closer):
            closer()


def _measure_subprocess(points_path, payload, backing, cache_bytes):
    """One (payload, backing) measurement in a fresh interpreter."""
    command = [
        sys.executable, str(Path(__file__).resolve()), "--_measure",
        str(points_path), str(payload), backing, str(cache_bytes),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        command, capture_output=True, text=True, env=env, check=False
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"measurement subprocess failed ({backing}): "
            f"{proc.stderr.strip()[-500:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _run_measure_child(argv):
    points_path, payload, backing, cache_bytes = argv
    points = np.load(points_path)
    result = _measure_inprocess(
        points, Path(payload), backing, int(cache_bytes)
    )
    print(json.dumps(result))
    return 0


def bench_throughput_curve(sizes, workdir, *, subprocesses):
    """mmap-vs-RAM throughput and RSS across the size ladder."""
    curve = []
    rng = np.random.default_rng(SEED)
    for n in sizes:
        points = rng.random((n, DIM))
        payload = workdir / f"index-{n}.rpc"
        _build_payload(points, payload)
        cache_bytes = _cache_budget(n)
        if subprocesses:
            points_path = workdir / f"points-{n}.npy"
            np.save(points_path, points)
            ram = _measure_subprocess(points_path, payload, "ram", cache_bytes)
            mapped = _measure_subprocess(
                points_path, payload, "mmap", cache_bytes
            )
        else:
            ram = _measure_inprocess(points, payload, "ram", cache_bytes)
            mapped = _measure_inprocess(points, payload, "mmap", cache_bytes)
        if mapped["digest"] != ram["digest"]:
            raise AssertionError(
                f"n={n}: mmap answers diverge from the RAM path"
            )
        curve.append({
            "n": n,
            "payload_bytes": payload.stat().st_size,
            "cache_bytes": cache_bytes,
            "answers_identical": True,
            "ram": ram,
            "mmap": mapped,
            "mmap_vs_ram_qps": (
                round(mapped["qps"] / ram["qps"], 3)
                if ram["qps"] and mapped["qps"] else None
            ),
        })
    return curve


def bench_streaming_census(n, workdir):
    """Chunked on-disk census must equal the in-memory sharded census."""
    rng = np.random.default_rng(SEED + 2)
    points = rng.random((n, DIM))
    sites = points[:K_SITES]
    metric = EuclideanDistance()
    start = time.perf_counter()
    whole, _ = sharded_census(points, sites, metric, ks=[4, K_SITES])
    inmemory_s = time.perf_counter() - start
    database = workdir / f"census-{n}.txt"
    save_vectors(database, points)
    chunk_rows = min(CENSUS_CHUNK_ROWS, max(256, n // 8))
    start = time.perf_counter()
    streamed = streaming_census(
        iter_vector_chunks(database, chunk_rows), sites, metric,
        ks=[4, K_SITES],
    )
    streamed_s = time.perf_counter() - start
    for k in whole:
        same = (
            np.array_equal(streamed[k].codes, whole[k].codes)
            and np.array_equal(streamed[k]._counts, whole[k]._counts)
        )
        if not same:
            raise AssertionError(
                f"streaming census diverges from in-memory at k={k}"
            )
    return {
        "n": n,
        "chunk_rows": chunk_rows,
        "counts_identical": True,
        "distinct": {str(k): whole[k].distinct for k in sorted(whole)},
        "inmemory_s": round(inmemory_s, 4),
        "streamed_s": round(streamed_s, 4),
    }


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--_measure":
        return _run_measure_child(argv[1:])
    parser = argparse.ArgumentParser(
        description="Out-of-core mapped-store vs RAM benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI, measured in-process; the residency, "
        "identical-answer, and census guards still assert; the JSON "
        "write is skipped unless --output is given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="result JSON path "
        f"(default: {REPO_ROOT / 'BENCH_outofcore.json'})",
    )
    args = parser.parse_args(argv)

    sizes = SIZES_SMOKE if args.smoke else SIZES_FULL
    census_n = 4_096 if args.smoke else 50_000
    try:
        with tempfile.TemporaryDirectory(prefix="bench-outofcore-") as tmp:
            workdir = Path(tmp)
            curve = bench_throughput_curve(
                sizes, workdir, subprocesses=not args.smoke
            )
            census = bench_streaming_census(census_n, workdir)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1

    report = {
        "bench": "bench_outofcore",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "dataset": "uniform-vectors",
        "metric": "euclidean",
        "dim": DIM,
        "sites": K_SITES,
        "knn": KNN,
        "budget": BUDGET,
        "residency_factor": RESIDENCY_FACTOR,
        "throughput_curve": curve,
        "streaming_census": census,
    }
    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_outofcore.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    for point in curve:
        mapped = point["mmap"]
        print(
            f"n={point['n']}: ram {point['ram']['qps']} q/s "
            f"(rss {point['ram']['ru_maxrss_kb']} KiB) | "
            f"mmap {mapped['qps']} q/s "
            f"(rss {mapped['ru_maxrss_kb']} KiB, decoded peak "
            f"{mapped['peak_cache_bytes']}/{mapped['cache_bytes']} B), "
            f"answers identical"
        )
    print(
        f"census n={census['n']}: streamed {census['streamed_s']}s vs "
        f"in-memory {census['inmemory_s']}s, counts identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
