"""Tests for the ASCII database formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.io import (
    load_permutations,
    load_strings,
    load_vectors,
    save_permutations,
    save_strings,
    save_vectors,
)


class TestVectors:
    def test_roundtrip(self, tmp_path, rng):
        path = tmp_path / "vectors.txt"
        original = rng.random((20, 4))
        save_vectors(path, original)
        loaded = load_vectors(path)
        np.testing.assert_array_equal(original, loaded)  # repr() is lossless

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert load_vectors(path).shape == (0, 0)

    def test_rejects_ragged(self, tmp_path):
        path = tmp_path / "ragged.txt"
        path.write_text("1.0 2.0\n3.0\n")
        with pytest.raises(ValueError):
            load_vectors(path)

    def test_rejects_non_2d(self, tmp_path, rng):
        with pytest.raises(ValueError):
            save_vectors(tmp_path / "bad.txt", rng.random(5))


class TestStrings:
    def test_roundtrip(self, tmp_path, small_words):
        path = tmp_path / "words.txt"
        save_strings(path, small_words)
        assert load_strings(path) == small_words

    def test_unicode_roundtrip(self, tmp_path):
        path = tmp_path / "unicode.txt"
        words = ["héllo", "wörld", "ñandú"]
        save_strings(path, words)
        assert load_strings(path) == words

    def test_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(ValueError):
            save_strings(tmp_path / "bad.txt", ["a\nb"])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.txt"
        path.write_text("alpha\n\nbeta\n")
        assert load_strings(path) == ["alpha", "beta"]


class TestPermutations:
    def test_roundtrip(self, tmp_path, rng):
        path = tmp_path / "perms.txt"
        perms = np.array([rng.permutation(6) for _ in range(15)])
        save_permutations(path, perms)
        np.testing.assert_array_equal(load_permutations(path), perms)

    def test_ascii_format_is_sort_uniq_friendly(self, tmp_path):
        """The paper counts unique permutations with sort | uniq | wc; one
        space-separated permutation per line supports exactly that."""
        path = tmp_path / "perms.txt"
        perms = np.array([[0, 1, 2], [2, 1, 0], [0, 1, 2]])
        save_permutations(path, perms)
        lines = path.read_text().splitlines()
        assert lines == ["0 1 2", "2 1 0", "0 1 2"]
        assert len(set(lines)) == 2

    def test_empty(self, tmp_path):
        path = tmp_path / "none.txt"
        path.write_text("")
        assert load_permutations(path).shape == (0, 0)

    def test_rejects_non_matrix(self, tmp_path):
        with pytest.raises(ValueError):
            save_permutations(tmp_path / "bad.txt", np.array([0, 1, 2]))
