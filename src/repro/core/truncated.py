"""Truncated distance permutations: store only the nearest ``m`` of ``k``.

A natural follow-up to the paper (and the direction later permutation
indexes took): if the full permutation needs too many bits, keep only the
prefix naming the ``m`` closest sites.  This module counts distinct
prefixes the same way the paper counts full permutations, bounding prefix
storage at ``ceil(log2 #prefixes)`` bits.

The count of length-``m`` prefixes is the number of cells of the
*order-m ordered* Voronoi diagram, sandwiched between the order-1 diagram
(``m = 1``: at most ``k`` cells) and the full diagram (``m = k``, the
paper's object); the census curve over ``m`` shows where the information
in the permutation saturates.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.core.permutation import permutations_from_distances
from repro.core.storage import bits_for_count
from repro.metrics.base import Metric

__all__ = [
    "truncate_permutations",
    "count_distinct_prefixes",
    "prefix_census_curve",
    "max_prefixes_unrestricted",
    "prefix_storage_bits",
]


def truncate_permutations(perms: np.ndarray, m: int) -> np.ndarray:
    """Return the length-``m`` prefixes of the permutation rows."""
    perms = np.asarray(perms)
    if perms.ndim != 2:
        raise ValueError(f"expected (n, k) matrix, got {perms.shape}")
    if not 1 <= m <= perms.shape[1]:
        raise ValueError(f"need 1 <= m <= {perms.shape[1]}, got {m}")
    return perms[:, :m]


def count_distinct_prefixes(perms: np.ndarray, m: int) -> int:
    """Count distinct length-``m`` prefixes (ordered)."""
    prefixes = truncate_permutations(perms, m)
    return int(np.unique(prefixes, axis=0).shape[0])


def max_prefixes_unrestricted(k: int, m: int) -> int:
    """Number of possible length-``m`` prefixes: ``k! / (k-m)!``."""
    if not 1 <= m <= k:
        raise ValueError(f"need 1 <= m <= k, got m={m}, k={k}")
    return math.perm(k, m)


def prefix_storage_bits(count: int) -> int:
    """Bits per element for a table of ``count`` realized prefixes."""
    return bits_for_count(count)


def prefix_census_curve(
    points: Sequence,
    sites: Sequence,
    metric: Metric,
) -> Dict[int, int]:
    """Distinct-prefix counts for every ``m = 1..k`` on one site set.

    One distance matrix is computed; each prefix length reuses it.  The
    curve is monotone nondecreasing in ``m`` by construction and its
    flattening point is where extra permutation positions stop adding
    information (the storage-versus-selectivity trade-off knob).
    """
    distances = metric.to_sites(points, sites)
    perms = permutations_from_distances(distances)
    return {
        m: count_distinct_prefixes(perms, m)
        for m in range(1, perms.shape[1] + 1)
    }
