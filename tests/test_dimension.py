"""Tests for dimensionality statistics (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting import euclidean_permutation_count
from repro.core.dimension import (
    estimate_rho,
    intrinsic_dimensionality,
    permutation_dimension,
    sample_distances,
)
from repro.datasets.vectors import latent_manifold_vectors, uniform_vectors
from repro.metrics import EuclideanDistance


class TestIntrinsicDimensionality:
    def test_known_value(self):
        # Distances with mean 2 and variance 1: rho = 4 / 2 = 2.
        distances = [1.0, 3.0, 1.0, 3.0]
        assert intrinsic_dimensionality(distances) == pytest.approx(2.0)

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            intrinsic_dimensionality([1.0])

    def test_rejects_constant_distances(self):
        with pytest.raises(ValueError):
            intrinsic_dimensionality([2.0, 2.0, 2.0])

    def test_grows_with_dimension(self, rng):
        """rho of the uniform cube increases with dimension — the basis of
        its use as a dimensionality measure."""
        metric = EuclideanDistance()
        rhos = []
        for d in (1, 3, 6, 10):
            points = uniform_vectors(800, d, rng)
            rhos.append(estimate_rho(points, metric, n_pairs=800, rng=rng))
        assert rhos == sorted(rhos)

    def test_scale_invariant(self, rng):
        metric = EuclideanDistance()
        points = uniform_vectors(300, 4, rng)
        rho_a = estimate_rho(points, metric, n_pairs=500, rng=np.random.default_rng(5))
        rho_b = estimate_rho(
            points * 100.0, metric, n_pairs=500, rng=np.random.default_rng(5)
        )
        assert rho_a == pytest.approx(rho_b)

    def test_manifold_has_low_rho(self, rng):
        """A 2-manifold embedded in 50 dimensions keeps rho near 2-d."""
        metric = EuclideanDistance()
        flat = latent_manifold_vectors(500, 50, 2, noise=0.001, rng=rng)
        ambient = uniform_vectors(500, 50, rng)
        rho_flat = estimate_rho(flat, metric, n_pairs=600, rng=rng)
        rho_ambient = estimate_rho(ambient, metric, n_pairs=600, rng=rng)
        assert rho_flat < rho_ambient / 3


class TestSampleDistances:
    def test_no_self_pairs(self, rng):
        points = uniform_vectors(50, 2, rng)
        distances = sample_distances(points, EuclideanDistance(), 300, rng)
        assert np.all(distances > 0)

    def test_sample_size(self, rng):
        points = uniform_vectors(20, 2, rng)
        assert len(sample_distances(points, EuclideanDistance(), 123, rng)) == 123

    def test_rejects_single_point(self, rng):
        with pytest.raises(ValueError):
            sample_distances(uniform_vectors(1, 2, rng), EuclideanDistance(), 5, rng)


class TestPermutationDimension:
    def test_exact_table_values_roundtrip(self):
        """observed = N_{d,2}(k) must estimate exactly d."""
        for d in (1, 2, 3, 5):
            for k in (6, 8, 12):
                observed = euclidean_permutation_count(d, k)
                assert permutation_dimension(observed, k) == pytest.approx(float(d))

    def test_interpolates_between_dimensions(self):
        k = 8
        low = euclidean_permutation_count(2, k)
        high = euclidean_permutation_count(3, k)
        observed = int(np.sqrt(low * high))  # geometric midpoint
        estimate = permutation_dimension(observed, k)
        assert 2.0 < estimate < 3.0
        assert estimate == pytest.approx(2.5, abs=0.05)

    def test_single_permutation_is_zero_dimensional(self):
        assert permutation_dimension(1, 8) == 0.0

    def test_saturates_at_max_dimension(self):
        import math

        assert permutation_dimension(
            math.factorial(6), 6, max_dimension=16
        ) <= 16.0

    def test_monotone_in_observed(self):
        k = 10
        estimates = [
            permutation_dimension(count, k)
            for count in (2, 10, 100, 1000, 10000)
        ]
        assert estimates == sorted(estimates)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            permutation_dimension(0, 5)
        with pytest.raises(ValueError):
            permutation_dimension(10, 1)

    def test_custom_reference(self):
        """A calibration curve replaces the theoretical maximum."""
        def reference(d, k):
            return float((d + 1) ** k)

        estimate = permutation_dimension(8, 3, reference=reference)
        assert estimate == pytest.approx(1.0)

    def test_measured_uniform_data_dimension_close(self, rng):
        """Uniform 3-d data should estimate a dimension in [1.5, 3.5] from
        its permutation count (the paper's Table 2 commentary approach)."""
        from repro.core.permutation import (
            count_distinct_permutations,
            distance_permutations,
        )

        points = uniform_vectors(4000, 3, rng)
        k = 8
        sites = points[rng.choice(4000, size=k, replace=False)]
        perms = distance_permutations(points, sites, EuclideanDistance())
        observed = count_distinct_permutations(perms)
        estimate = permutation_dimension(observed, k)
        assert 1.5 <= estimate <= 3.5
