"""Tests for permutation-ordered LAESA (the paper's iLAESA suggestion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index import LinearScan, PivotIndex
from repro.metrics import EuclideanDistance, LevenshteinDistance


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(33)
    points = rng.random((500, 4))
    queries = rng.random((12, 4))
    metric = EuclideanDistance()
    return points, queries, metric, LinearScan(points, metric)


class TestExactness:
    def test_knn_matches_linear(self, setup):
        points, queries, metric, oracle = setup
        index = PivotIndex(
            points, metric, n_pivots=10, candidate_order="permutation",
            rng=np.random.default_rng(1),
        )
        for query in queries:
            for k in (1, 5, 20):
                got = sorted(round(n.distance, 9)
                             for n in index.knn_query(query, k))
                want = sorted(round(n.distance, 9)
                              for n in oracle.knn_query(query, k))
                assert got == want

    def test_range_unaffected_by_order_option(self, setup):
        points, queries, metric, oracle = setup
        index = PivotIndex(
            points, metric, n_pivots=10, candidate_order="permutation",
            rng=np.random.default_rng(2),
        )
        for query in queries[:4]:
            got = [(n.index, round(n.distance, 9))
                   for n in index.range_query(query, 0.3)]
            want = [(n.index, round(n.distance, 9))
                    for n in oracle.range_query(query, 0.3)]
            assert got == want

    def test_string_metric(self):
        words = ["hello", "help", "held", "word", "world", "ward",
                 "care", "core", "cart", "carp"] * 10
        metric = LevenshteinDistance()
        oracle = LinearScan(words, metric)
        index = PivotIndex(
            words, metric, n_pivots=4, candidate_order="permutation",
            rng=np.random.default_rng(3),
        )
        for query in ("hold", "wars"):
            got = sorted(n.distance for n in index.knn_query(query, 5))
            want = sorted(n.distance for n in oracle.knn_query(query, 5))
            assert got == want


class TestBehaviour:
    def test_rejects_unknown_order(self, setup):
        points, _, metric, _ = setup
        with pytest.raises(ValueError):
            PivotIndex(points, metric, candidate_order="sideways")

    def test_pivot_permutations_precomputed_free(self, setup):
        """Deriving pivot permutations from the table must add no metric
        evaluations beyond the standard LAESA build."""
        points, _, metric, _ = setup
        classic = PivotIndex(points, metric, n_pivots=8,
                             pivot_strategy="first")
        ordered = PivotIndex(points, metric, n_pivots=8,
                             pivot_strategy="first",
                             candidate_order="permutation")
        assert ordered.stats.build_distances == classic.stats.build_distances

    def test_cost_same_regime_as_classic(self, setup):
        """Permutation ordering loses the sorted-bound early exit but
        gains earlier radius shrinking; both must stay well below a
        linear scan, within 3x of each other."""
        points, queries, metric, _ = setup
        classic = PivotIndex(points, metric, n_pivots=10,
                             rng=np.random.default_rng(4))
        ordered = PivotIndex(points, metric, n_pivots=10,
                             candidate_order="permutation",
                             rng=np.random.default_rng(4))
        for index in (classic, ordered):
            index.reset_stats()
            for query in queries:
                index.knn_query(query, 3)
        assert ordered.stats.distances_per_query < 0.8 * len(points)
        ratio = (ordered.stats.distances_per_query
                 / classic.stats.distances_per_query)
        assert ratio < 3.0
