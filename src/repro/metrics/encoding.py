"""Batched kernels for discrete string metrics over pre-encoded collections.

The paper's headline workloads (dictionaries and gene sequences under edit
distance) evaluate the same strings against each other millions of times,
yet re-decoding a Python ``str`` per scalar call dominates the cost long
before the DP does.  This module encodes a string collection **once** into
a padded ``uint32`` code-point matrix plus a length vector
(:class:`EncodedStrings`), caches the encoding per collection, and
computes whole distance *matrices* from the encoded form:

- :func:`levenshtein_matrix` runs the Wagner–Fischer row DP vectorized
  across the entire target batch: DP rows have transposed shape
  ``(m + 1, batch)`` and the within-row insertion dependency is resolved
  by a sequential pass over the short axis of contiguous batch-wide
  minimums.  An optional ``max_distance`` adds an ``|len(a) - len(b)|``
  lower-bound prefilter and early-exit pruning for range queries.
- :func:`hamming_matrix` and :func:`lcp_matrix` /
  :func:`prefix_distance_matrix` are fully vectorized broadcasts over the
  code matrices.

Padding never contaminates results: DP cell ``(i, j)`` depends only on
target positions ``< j``, so reading the answer at column ``length``
touches real characters only, and LCP runs are capped at the pairwise
minimum length (padding lives at positions ``>= length >= min length``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "EncodedStrings",
    "encode_strings",
    "clear_encoding_cache",
    "levenshtein_matrix",
    "hamming_matrix",
    "lcp_matrix",
    "prefix_distance_matrix",
]

#: Collections whose encodings are kept alive by the LRU cache.  Index
#: builds, censuses, and batched queries hit the same database (and site)
#: collections over and over; a handful of slots covers every workload
#: while bounding memory.
_CACHE_SIZE = 8

#: Upper bound on DP cells per target chunk (~3 int32 row buffers of this
#: many entries live at once, so the working set stays under ~50 MB).
_TARGET_DP_CELLS = 1 << 22

#: Upper bound on boolean broadcast elements per chunk in the Hamming and
#: LCP kernels.
_TARGET_BROADCAST_CELLS = 1 << 24

#: How many DP rows run between early-exit pruning passes when
#: ``max_distance`` is set.
_PRUNE_EVERY = 16

#: Fixed per-DP-row cost expressed in cell-equivalents: a row is ~6 numpy
#: calls (a few microseconds) regardless of width, which matches the
#: throughput of roughly this many int32 cells.  Entering the orientation
#: model, it steers narrow-batch orientations (many short queries against
#: a handful of sites) toward looping the handful.
_ROW_OVERHEAD_CELLS = 1 << 14


class EncodedStrings:
    """A string collection encoded once for batched kernels.

    ``codes`` is the ``(n, max_length)`` matrix of unicode code points
    (``uint32``), rows zero-padded past each string's length; ``lengths``
    holds the true lengths.  Instances are immutable and reusable across
    every kernel call that touches the same collection.
    """

    __slots__ = ("codes", "lengths", "total_chars")

    def __init__(self, codes: np.ndarray, lengths: np.ndarray):
        self.codes = codes
        self.lengths = lengths
        self.total_chars = int(lengths.sum()) if lengths.size else 0

    @classmethod
    def from_strings(cls, strings: Sequence[str]) -> "EncodedStrings":
        """Encode a collection in one pass (one join, one buffer decode)."""
        if not all(isinstance(s, str) for s in strings):
            raise TypeError("EncodedStrings requires a collection of str")
        n = len(strings)
        lengths = np.fromiter(
            (len(s) for s in strings), dtype=np.int64, count=n
        )
        total = int(lengths.sum()) if n else 0
        try:
            flat = np.frombuffer(
                "".join(strings).encode("utf-32-le"), dtype="<u4"
            ).astype(np.uint32, copy=False)
        except UnicodeEncodeError:
            # Lone surrogates cannot round-trip through UTF-32; fall back
            # to encoding code points directly.
            flat = np.fromiter(
                (ord(c) for s in strings for c in s),
                dtype=np.uint32,
                count=total,
            )
        max_length = int(lengths.max()) if n else 0
        codes = np.zeros((n, max_length), dtype=np.uint32)
        if total:
            mask = np.arange(max_length)[None, :] < lengths[:, None]
            codes[mask] = flat
        return cls(codes, lengths)

    @property
    def max_length(self) -> int:
        return self.codes.shape[1]

    def row(self, i: int) -> np.ndarray:
        """The code points of string ``i`` without padding."""
        return self.codes[i, : self.lengths[i]]

    def __len__(self) -> int:
        return self.lengths.shape[0]

    def __repr__(self) -> str:
        return (
            f"EncodedStrings(n={len(self)}, max_length={self.max_length})"
        )


_ENCODE_CACHE: "OrderedDict[Tuple[str, ...], EncodedStrings]" = OrderedDict()


def encode_strings(strings: Sequence[str]) -> EncodedStrings:
    """Return the (cached) encoding of a string collection.

    The cache key is the tuple of strings itself: hashing reuses each
    string's cached hash and comparison short-circuits on object identity,
    so repeat lookups of the same collection cost O(n) pointer work, not a
    re-encode.  Uncached inputs are encoded transparently and enter the
    LRU.
    """
    key = tuple(strings)
    cached = _ENCODE_CACHE.get(key)
    if cached is not None:
        _ENCODE_CACHE.move_to_end(key)
        return cached
    encoded = EncodedStrings.from_strings(key)
    _ENCODE_CACHE[key] = encoded
    while len(_ENCODE_CACHE) > _CACHE_SIZE:
        _ENCODE_CACHE.popitem(last=False)
    return encoded


def clear_encoding_cache() -> None:
    """Drop every cached encoding (for tests and memory-sensitive callers)."""
    _ENCODE_CACHE.clear()


def _levenshtein_one_vs_many(
    query: np.ndarray, codes_t: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Distances from one query to a batch of targets, fully vectorized.

    Operates on the *transposed* target chunk ``codes_t`` of shape
    ``(m, batch)``: DP rows are ``(m + 1, batch)`` and each query
    character advances every target's DP by one row.  The transposed
    layout makes the sequential insertion recurrence
    ``row[j] = min(row[j], row[j - 1] + 1)`` a short Python loop over
    ``m`` *contiguous* batch-wide minimums — several times faster than
    ``np.minimum.accumulate`` along rows of the untransposed layout.
    All buffers are allocated once and reused across the character loop.
    """
    m, batch = codes_t.shape
    if query.shape[0] == 0:
        return lengths
    previous = np.broadcast_to(
        np.arange(m + 1, dtype=np.int32)[:, None], (m + 1, batch)
    ).copy()
    current = np.empty_like(previous)
    cost = np.empty((m, batch), dtype=np.int32)
    bump = np.empty(batch, dtype=np.int32)
    for i, ca in enumerate(query, start=1):
        # substitution vs deletion, elementwise over the whole batch
        np.not_equal(codes_t, ca, out=cost)
        cost += previous[:-1]
        np.add(previous[1:], 1, out=current[1:])
        np.minimum(cost, current[1:], out=current[1:])
        current[0] = i
        # insertions: a sequential pass over the short axis, each step a
        # contiguous batch-wide minimum
        for j in range(1, m + 1):
            np.add(current[j - 1], 1, out=bump)
            np.minimum(current[j], bump, out=current[j])
        previous, current = current, previous
    return previous[lengths, np.arange(batch)]


def _levenshtein_one_vs_many_bounded(
    query: np.ndarray,
    codes_t: np.ndarray,
    lengths: np.ndarray,
    max_distance: int,
) -> np.ndarray:
    """Range-query variant: exact up to ``max_distance``, pruned beyond.

    Targets whose length difference already exceeds the bound never enter
    the DP (the length gap is a valid Levenshtein lower bound), and every
    :data:`_PRUNE_EVERY` rows targets whose running row minimum has
    crossed the bound are finalized at that minimum — row minima are
    non-decreasing in the row index and lower-bound the final distance, so
    any reported value ``> max_distance`` certifies the true distance is
    too.  Entries with true distance ``<= max_distance`` are exact.
    """
    out = np.abs(lengths - query.shape[0]).astype(np.int32)
    active = np.flatnonzero(out <= max_distance)
    if query.shape[0] == 0 or active.shape[0] == 0:
        return out
    if active.shape[0] < lengths.shape[0]:
        codes_t = np.ascontiguousarray(codes_t[:, active])
        lengths = lengths[active]
    m = codes_t.shape[0]
    previous = np.broadcast_to(
        np.arange(m + 1, dtype=np.int32)[:, None], (m + 1, codes_t.shape[1])
    ).copy()
    current = np.empty_like(previous)
    cost = np.empty(codes_t.shape, dtype=np.int32)
    bump = np.empty(codes_t.shape[1], dtype=np.int32)
    for i, ca in enumerate(query, start=1):
        np.not_equal(codes_t, ca, out=cost)
        cost += previous[:-1]
        np.add(previous[1:], 1, out=current[1:])
        np.minimum(cost, current[1:], out=current[1:])
        current[0] = i
        for j in range(1, m + 1):
            np.add(current[j - 1], 1, out=bump)
            np.minimum(current[j], bump, out=current[j])
        previous, current = current, previous
        if i % _PRUNE_EVERY == 0 and i < query.shape[0]:
            row_min = previous.min(axis=0)
            alive = row_min <= max_distance
            if not alive.all():
                dead = ~alive
                out[active[dead]] = row_min[dead]
                active = active[alive]
                if active.shape[0] == 0:
                    return out
                codes_t = np.ascontiguousarray(codes_t[:, alive])
                lengths = lengths[alive]
                previous = np.ascontiguousarray(previous[:, alive])
                current = np.empty_like(previous)
                cost = np.empty(codes_t.shape, dtype=np.int32)
                bump = np.empty(codes_t.shape[1], dtype=np.int32)
    out[active] = previous[lengths, np.arange(active.shape[0])]
    return out


def levenshtein_matrix(
    xs: EncodedStrings,
    ys: EncodedStrings,
    max_distance: Optional[int] = None,
) -> np.ndarray:
    """The ``len(xs) x len(ys)`` Levenshtein matrix from encoded inputs.

    The DP loops over the characters of one side and vectorizes across
    the other; each looped character costs one DP row — a fixed slice of
    numpy-call overhead (modeled as :data:`_ROW_OVERHEAD_CELLS`) plus one
    cell per target position — so orientation is chosen to minimize
    ``total_chars * (overhead + batch_width)``.  A few sites against many
    points therefore always loop over the sites: ~100 wide rows instead
    of ~100k narrow ones at identical FLOPs.

    Targets are processed in length-sorted chunks (bounding the DP
    working set *and* trimming each chunk's rows to its own longest
    string, which skips most padding work on natural length
    distributions), transposed once per chunk and reused across every
    query.  With ``max_distance`` set, entries whose true distance
    exceeds it may be reported as any lower bound that also exceeds it
    (see :func:`_levenshtein_one_vs_many_bounded`); entries at or under
    the bound are exact either way.
    """
    cost_loop_x = xs.total_chars * (
        _ROW_OVERHEAD_CELLS + max(1, len(ys)) * (ys.max_length + 1)
    )
    cost_loop_y = ys.total_chars * (
        _ROW_OVERHEAD_CELLS + max(1, len(xs)) * (xs.max_length + 1)
    )
    if cost_loop_y < cost_loop_x:
        return np.ascontiguousarray(
            levenshtein_matrix(ys, xs, max_distance=max_distance).T
        )
    out = np.empty((len(xs), len(ys)), dtype=np.int64)
    if len(xs) == 0 or len(ys) == 0:
        return out
    order = np.argsort(ys.lengths, kind="stable")
    chunk = max(1, _TARGET_DP_CELLS // (ys.max_length + 1))
    for start in range(0, len(ys), chunk):
        idx = order[start : start + chunk]
        lengths = ys.lengths[idx].astype(np.int32)
        width = int(lengths[-1])  # sorted: the chunk's longest string
        codes_t = np.ascontiguousarray(ys.codes[idx, :width].T)
        for i in range(len(xs)):
            query = xs.row(i)
            if max_distance is None:
                out[i, idx] = _levenshtein_one_vs_many(
                    query, codes_t, lengths
                )
            else:
                out[i, idx] = _levenshtein_one_vs_many_bounded(
                    query, codes_t, lengths, max_distance
                )
    return out


def hamming_matrix(xs: EncodedStrings, ys: EncodedStrings) -> np.ndarray:
    """The Hamming matrix from encoded inputs (uniform lengths required)."""
    out = np.empty((len(xs), len(ys)), dtype=np.int64)
    if len(xs) == 0 or len(ys) == 0:
        return out
    all_lengths = np.concatenate([xs.lengths, ys.lengths])
    if (all_lengths != all_lengths[0]).any():
        raise ValueError(
            "Hamming distance requires equal lengths, got lengths "
            f"{sorted(set(int(v) for v in all_lengths))}"
        )
    width = int(all_lengths[0])
    if width == 0:
        out[:] = 0
        return out
    chunk = max(1, _TARGET_BROADCAST_CELLS // (len(ys) * width))
    for start in range(0, len(xs), chunk):
        stop = min(start + chunk, len(xs))
        out[start:stop] = (
            xs.codes[start:stop, None, :width] != ys.codes[None, :, :width]
        ).sum(axis=2)
    return out


def lcp_matrix(xs: EncodedStrings, ys: EncodedStrings) -> np.ndarray:
    """Longest-common-prefix lengths for every pair, from encoded inputs.

    The leading run of equal code points is counted over the first
    ``min(max_length)`` columns and capped at the pairwise minimum length,
    which exactly neutralizes pad-vs-pad (and pad-vs-NUL) false matches:
    they can only occur at positions past one string's end.
    """
    out = np.empty((len(xs), len(ys)), dtype=np.int64)
    if len(xs) == 0 or len(ys) == 0:
        return out
    min_lengths = np.minimum(xs.lengths[:, None], ys.lengths[None, :])
    width = min(xs.max_length, ys.max_length)
    if width == 0:
        return np.zeros_like(out)
    chunk = max(1, _TARGET_BROADCAST_CELLS // (len(ys) * width))
    for start in range(0, len(xs), chunk):
        stop = min(start + chunk, len(xs))
        equal = xs.codes[start:stop, None, :width] == ys.codes[None, :, :width]
        run = np.logical_and.accumulate(equal, axis=2).sum(axis=2)
        out[start:stop] = run
    return np.minimum(out, min_lengths)


def prefix_distance_matrix(
    xs: EncodedStrings, ys: EncodedStrings
) -> np.ndarray:
    """The prefix-metric matrix ``len(a) + len(b) - 2 lcp(a, b)``."""
    return (
        xs.lengths[:, None] + ys.lengths[None, :] - 2 * lcp_matrix(xs, ys)
    )
