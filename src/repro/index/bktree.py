"""Burkhard–Keller tree: the classic index for integer-valued metrics.

Dictionaries under edit distance — half of the paper's Table 2 — are the
canonical BK-tree workload: children of a node are keyed by their integer
distance to the node's element, and the triangle inequality prunes every
child bucket ``b`` with ``|b - d(q, v)| > r``.  Included as a substrate
baseline alongside the vector-oriented trees.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List

from repro.index.base import Index, Neighbor

__all__ = ["BKTree"]


class _Node:
    __slots__ = ("index", "children")

    def __init__(self, index: int):
        self.index = index
        self.children: Dict[int, "_Node"] = {}


class BKTree(Index):
    """Burkhard–Keller tree over an integer-valued metric.

    Raises at build time if the metric produces a non-integer distance:
    the bucket structure is only correct for discrete metrics (edit
    distance, Hamming, prefix, tree metrics with integer weights).
    """

    def _build(self) -> None:
        self.root = _Node(0)
        for i in range(1, len(self.points)):
            self._insert(i)

    def _distance_int(self, x: Any, y: Any) -> int:
        d = self.metric.distance(x, y)
        rounded = int(round(d))
        if abs(d - rounded) > 1e-9:
            raise ValueError(
                f"BKTree requires an integer-valued metric, got d={d}"
            )
        return rounded

    def _insert(self, index: int) -> None:
        node = self.root
        while True:
            d = self._distance_int(self.points[index], self.points[node.index])
            if d == 0:
                # Duplicate element: bucket it at distance 0 via a chain.
                d = 0
            child = node.children.get(d)
            if child is None:
                node.children[d] = _Node(index)
                return
            node = child

    def _range_impl(self, query: Any, radius: float) -> List[Neighbor]:
        results: List[Neighbor] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            d = self._distance_int(query, self.points[node.index])
            if d <= radius:
                results.append(Neighbor(float(d), node.index))
            for bucket, child in node.children.items():
                # Triangle inequality: any x in this subtree satisfies
                # |d(q, v) - bucket| <= d(q, x).
                if abs(d - bucket) <= radius:
                    stack.append(child)
        return results

    def _knn_impl(self, query: Any, k: int) -> List[Neighbor]:
        heap: List[tuple] = []

        def offer(distance: float, index: int) -> None:
            item = (-distance, -index)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)

        def current_radius() -> float:
            return -heap[0][0] if len(heap) == k else float("inf")

        counter = 0
        queue: List[tuple] = [(0.0, counter, self.root)]
        while queue:
            bound, _, node = heapq.heappop(queue)
            if bound > current_radius():
                continue
            d = self._distance_int(query, self.points[node.index])
            offer(float(d), node.index)
            for bucket, child in node.children.items():
                child_bound = max(0.0, abs(d - bucket))
                if child_bound <= current_radius():
                    counter += 1
                    heapq.heappush(queue, (child_bound, counter, child))
        return [Neighbor(-nd, -ni) for nd, ni in heap]
