"""Tests for dictionary and sequence generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dictionaries import LANGUAGES, synthetic_dictionary
from repro.datasets.sequences import (
    genome_prefix_sequences,
    mutation_cascade_sequences,
)


class TestDictionaries:
    def test_all_seven_languages_present(self):
        assert set(LANGUAGES) == {
            "Dutch", "English", "French", "German", "Italian",
            "Norwegian", "Spanish",
        }

    def test_language_models_have_normalizable_frequencies(self):
        for model in LANGUAGES.values():
            symbols, probabilities = model.alphabet()
            assert len(symbols) == len(set(symbols))
            assert probabilities.sum() == pytest.approx(1.0)
            assert (probabilities > 0).all()

    def test_generates_n_distinct_sorted_words(self):
        words = synthetic_dictionary("English", 500, np.random.default_rng(0))
        assert len(words) == 500
        assert len(set(words)) == 500
        assert words == sorted(words)

    def test_words_use_language_alphabet(self):
        words = synthetic_dictionary("Dutch", 200, np.random.default_rng(1))
        alphabet = set(LANGUAGES["Dutch"].letters)
        for word in words:
            assert set(word) <= alphabet

    def test_word_lengths_plausible(self):
        words = synthetic_dictionary("German", 400, np.random.default_rng(2))
        lengths = [len(w) for w in words]
        assert 2 <= min(lengths)
        assert max(lengths) <= 24
        mean = sum(lengths) / len(lengths)
        assert 7 <= mean <= 14  # German model targets ~10.5

    def test_deterministic(self):
        a = synthetic_dictionary("French", 100, np.random.default_rng(3))
        b = synthetic_dictionary("French", 100, np.random.default_rng(3))
        assert a == b

    def test_unknown_language_rejected(self):
        with pytest.raises(KeyError):
            synthetic_dictionary("Klingon", 10)

    def test_paper_metadata_attached(self):
        assert LANGUAGES["Dutch"].paper_n == 229328
        assert LANGUAGES["English"].paper_rho == pytest.approx(8.492)


class TestGenomePrefixSequences:
    def test_count_and_alphabet(self):
        seqs = genome_prefix_sequences(100, rng=np.random.default_rng(0))
        assert len(seqs) == 100
        assert all(set(s) <= set("acgt") for s in seqs)

    def test_length_range(self):
        seqs = genome_prefix_sequences(
            200, min_length=10, max_length=50, rng=np.random.default_rng(1)
        )
        assert all(10 <= len(s) <= 50 for s in seqs)

    def test_length_spread_is_wide(self):
        """Length-dominated distances need widely varying lengths."""
        seqs = genome_prefix_sequences(300, rng=np.random.default_rng(2))
        lengths = [len(s) for s in seqs]
        assert max(lengths) - min(lengths) > 50

    def test_prefix_structure_mostly_preserved(self):
        """Few mutations: two sequences agree on most of the shared prefix."""
        seqs = genome_prefix_sequences(
            50, mutation_rate=1.0, rng=np.random.default_rng(3)
        )
        a, b = seqs[0], seqs[1]
        shared = min(len(a), len(b))
        agreement = sum(x == y for x, y in zip(a[:shared], b[:shared]))
        assert agreement > 0.8 * shared

    def test_deterministic(self):
        a = genome_prefix_sequences(20, rng=np.random.default_rng(4))
        b = genome_prefix_sequences(20, rng=np.random.default_rng(4))
        assert a == b

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            genome_prefix_sequences(0)
        with pytest.raises(ValueError):
            genome_prefix_sequences(5, min_length=50, max_length=20)


class TestMutationCascade:
    def test_count_and_alphabet(self):
        seqs = mutation_cascade_sequences(60, rng=np.random.default_rng(0))
        assert len(seqs) == 60
        assert all(set(s) <= set("acgt") for s in seqs)

    def test_first_is_ancestor_of_given_length(self):
        seqs = mutation_cascade_sequences(
            10, ancestor_length=77, rng=np.random.default_rng(1)
        )
        assert len(seqs[0]) == 77

    def test_lengths_stay_positive(self):
        seqs = mutation_cascade_sequences(
            200, ancestor_length=10, mean_edits=8.0, rng=np.random.default_rng(2)
        )
        assert all(len(s) >= 1 for s in seqs)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            mutation_cascade_sequences(0)
        with pytest.raises(ValueError):
            mutation_cascade_sequences(5, ancestor_length=4)
