"""Bench: batched query engine versus looped single-query search.

The batch refactor's reason to exist: the same workload (same answers,
same distance-evaluation counts) served at a multiple of the queries per
second, because metric evaluations collapse into a few vectorized
``batch_distances`` calls and the permutation index computes one footrule
matrix for the whole query set.  The looped baselines are timed on a
query subsample (their per-query cost is flat, so queries/sec is
unaffected) to keep the bench fast at 100k points.
"""

from __future__ import annotations

import numpy as np
from conftest import write_result

from repro.datasets.vectors import uniform_vectors
from repro.experiments.harness import run_query_workload
from repro.index import DistPermIndex, LinearScan
from repro.metrics import EuclideanDistance

DIM = 8
N_QUERIES = 1000
LOOP_SAMPLE = 30


def _speedup(index, queries, **workload):
    batched = run_query_workload(index, queries, batched=True, **workload)
    looped = run_query_workload(
        index, queries[:LOOP_SAMPLE], batched=False, **workload
    )
    # Same answers either way on the overlapping prefix.
    for single, batch in zip(looped.results, batched.results):
        assert [n.index for n in batch] == [n.index for n in single]
    return batched, looped, batched.queries_per_second / looped.queries_per_second


def test_distperm_knn_approx_batch_speedup(benchmark, results_dir):
    """The acceptance workload: approximate kNN on 10k Euclidean points."""

    def run():
        rng = np.random.default_rng(31)
        points = uniform_vectors(10_000, DIM, rng)
        queries = rng.random((N_QUERIES, DIM))
        index = DistPermIndex(points, EuclideanDistance(), n_sites=16,
                              rng=np.random.default_rng(32))
        return _speedup(index, queries, kind="knn-approx", k=10, budget=500)

    batched, looped, speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert batched.distances_per_query == looped.distances_per_query
    assert speedup >= 5.0
    lines = [
        "distperm knn_approx, n=10000, d=8, 16 sites, budget=500, k=10:",
        f"  looped single-query: {looped.queries_per_second:10.1f} q/s "
        f"({looped.n_queries} queries timed)",
        f"  batched engine:      {batched.queries_per_second:10.1f} q/s "
        f"({batched.n_queries} queries)",
        f"  speedup:             {speedup:10.1f}x",
        f"  distances/query:     {batched.distances_per_query:10.1f} "
        "(identical either way)",
    ]
    write_result(results_dir, "batch_distperm_speedup", "\n".join(lines))


def test_linear_scan_batch_speedup(benchmark, results_dir):
    """Exhaustive kNN: the distance-matrix formulation at three scales."""

    def run():
        rows = []
        for n_points in (1_000, 10_000, 100_000):
            rng = np.random.default_rng(41)
            points = uniform_vectors(n_points, DIM, rng)
            queries = rng.random((N_QUERIES, DIM))
            index = LinearScan(points, EuclideanDistance())
            batched, looped, speedup = _speedup(
                index, queries, kind="knn", k=10
            )
            rows.append((n_points, looped.queries_per_second,
                         batched.queries_per_second, speedup))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Vectorization must win at every scale on Euclidean vectors.
    assert all(speedup > 1.0 for _, _, _, speedup in rows)
    lines = [f"linear-scan exact 10-NN, d={DIM}, {N_QUERIES} queries "
             f"(loop timed on {LOOP_SAMPLE}):"]
    for n_points, loop_qps, batch_qps, speedup in rows:
        lines.append(
            f"  n={n_points:>6}: loop {loop_qps:10.1f} q/s   "
            f"batch {batch_qps:10.1f} q/s   speedup {speedup:6.1f}x"
        )
    write_result(results_dir, "batch_linear_speedup", "\n".join(lines))
