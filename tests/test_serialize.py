"""Tests for DistPermIndex serialization."""

from __future__ import annotations

import json
from functools import partial

import numpy as np
import pytest

from repro.datasets import load_database
from repro.index import DistPermIndex, ShardedIndex
from repro.index.serialize import (
    PayloadCorruptError,
    load_distperm,
    load_sharded,
    payload_format,
    read_shard_payload,
    save_distperm,
    save_sharded,
)
from repro.metrics import EuclideanDistance


@pytest.fixture
def built(rng):
    points = rng.random((400, 3))
    index = DistPermIndex(
        points, EuclideanDistance(), n_sites=7, rng=np.random.default_rng(1)
    )
    return points, index


class TestRoundTrip:
    def test_payload_roundtrip(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        assert loaded.site_indices == index.site_indices
        np.testing.assert_array_equal(loaded.permutations, index.permutations)
        assert loaded.unique_permutations() == index.unique_permutations()

    def test_loaded_index_answers_queries(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        query = rng.random(3)
        original = [(n.index, round(n.distance, 9))
                    for n in index.knn_query(query, 5)]
        reloaded = [(n.index, round(n.distance, 9))
                    for n in loaded.knn_query(query, 5)]
        assert original == reloaded

    def test_loaded_candidate_order_matches(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        query = rng.random(3)
        np.testing.assert_array_equal(
            index.candidate_order(query), loaded.candidate_order(query)
        )

    def test_string_database(self, tmp_path):
        database = load_database("English", n=300)
        index = DistPermIndex(
            database.points, database.metric, n_sites=5,
            rng=np.random.default_rng(2),
        )
        path = tmp_path / "dict.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, database.points, database.metric)
        assert loaded.unique_permutations() == index.unique_permutations()


class TestBatchedRoundTrip:
    """A loaded index must answer the *batched* API identically to the
    index it was saved from — the loader has to rebuild every derived
    cache ``_build`` creates, not just the payload arrays."""

    def _signatures(self, batches):
        return [
            [(n.index, round(n.distance, 9)) for n in batch]
            for batch in batches
        ]

    def test_knn_approx_batch_after_load(self, tmp_path, built, rng):
        """Regression: load_distperm used to skip ``_perm_positions``, so
        ``knn_approx_batch`` on any deserialized index crashed with
        AttributeError inside the footrule path."""
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        queries = rng.random((6, 3))
        fresh = index.knn_approx_batch(queries, 5, budget=60)
        reloaded = loaded.knn_approx_batch(queries, 5, budget=60)
        assert self._signatures(reloaded) == self._signatures(fresh)

    def test_full_batched_api_roundtrip(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        queries = rng.random((5, 3))
        assert self._signatures(
            loaded.range_batch(queries, 0.4)
        ) == self._signatures(index.range_batch(queries, 0.4))
        assert self._signatures(
            loaded.knn_batch(queries, 7)
        ) == self._signatures(index.knn_batch(queries, 7))
        assert self._signatures(
            loaded.knn_approx_batch(queries, 7, budget=100)
        ) == self._signatures(index.knn_approx_batch(queries, 7, budget=100))

    def test_string_database_batched_roundtrip(self, tmp_path):
        database = load_database("English", n=250)
        index = DistPermIndex(
            database.points, database.metric, n_sites=5,
            rng=np.random.default_rng(3),
        )
        path = tmp_path / "dict.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, database.points, database.metric)
        queries = [database.points[10], "hello", "zz"]
        assert self._signatures(
            loaded.knn_approx_batch(queries, 6, budget=40)
        ) == self._signatures(index.knn_approx_batch(queries, 6, budget=40))
        assert self._signatures(
            loaded.range_batch(queries, 2)
        ) == self._signatures(index.range_batch(queries, 2))

    def test_loaded_index_carries_build_attributes(self, tmp_path, built):
        """Every attribute ``__init__``/``_build`` sets must exist on a
        loaded index, so serialization can never again lag behind
        attributes added at build time."""
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        np.testing.assert_array_equal(
            loaded._perm_positions, index._perm_positions
        )
        assert loaded._perm_positions.dtype == index._perm_positions.dtype
        assert loaded._requested_sites == index.n_sites
        assert hasattr(loaded, "_site_strategy")
        assert hasattr(loaded, "_rng")


class TestValidation:
    def test_wrong_database_size_rejected(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        with pytest.raises(ValueError):
            load_distperm(path, points[:100], EuclideanDistance())

    def test_mismatched_database_rejected(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        other = rng.random((400, 3))
        with pytest.raises(ValueError):
            load_distperm(path, other, EuclideanDistance())

    def test_build_cost_not_paid_on_load(self, tmp_path, built):
        """Loading must not recompute the n x k distance matrix."""
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        # Only the single probe permutation was computed (k distances),
        # and the counter was reset afterwards.
        assert loaded.metric.count == 0


def _rewrite_npz(path, mutate):
    """Load an ``.npz``, apply ``mutate(arrays)``, and save it back."""
    with np.load(path) as data:
        arrays = {key: data[key] for key in data.files}
    mutate(arrays)
    np.savez_compressed(path, **arrays)


class TestCorruptPayloads:
    """Damaged v2 payloads must fail as :class:`PayloadCorruptError`
    naming the shard key and byte offset, not as a bare numpy shape
    error.  These tests rewrite npz members, so they pin ``version=2``."""

    def test_truncated_stream(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index, version=2)

        def truncate(arrays):
            arrays["codes_packed"] = arrays["codes_packed"][:-3]

        _rewrite_npz(path, truncate)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(path, points, EuclideanDistance())
        error = excinfo.value
        assert error.shard is None
        assert error.byte_offset > 0  # the short buffer's length
        assert "truncated" in str(error)
        assert "byte offset" in str(error)

    def test_bit_flipped_stream(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index, version=2)
        # k=7: 13-bit codes against 7! = 5040, so an all-ones element
        # (8191) decodes out of range.  Smash a mid-stream byte run —
        # every element fully inside it becomes all-ones.
        def flip(arrays):
            packed = arrays["codes_packed"].copy()
            packed[160:166] = 0xFF
            arrays["codes_packed"] = packed

        _rewrite_npz(path, flip)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(path, points, EuclideanDistance())
        error = excinfo.value
        assert error.shard is None
        # The offset points into the smashed run (first bad element).
        assert 150 <= error.byte_offset <= 170
        assert "decodes outside" in str(error)

    def test_wrong_width_stream(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index, version=2)

        def widen(arrays):
            arrays["bit_width"] = np.int64(int(arrays["bit_width"]) + 3)

        _rewrite_npz(path, widen)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(path, points, EuclideanDistance())
        error = excinfo.value
        assert error.byte_offset == 0  # header-level damage
        assert "width" in str(error)

    def test_sharded_error_names_the_shard(self, tmp_path, built):
        points, _ = built
        factory = partial(DistPermIndex, n_sites=5, site_strategy="first")
        path = tmp_path / "sharded.npz"
        with ShardedIndex(
            points, EuclideanDistance(), factory, n_shards=3
        ) as index:
            save_sharded(path, index, version=2)

        def truncate_s1(arrays):
            arrays["s1_codes_packed"] = arrays["s1_codes_packed"][:-2]

        _rewrite_npz(path, truncate_s1)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_sharded(path, points, EuclideanDistance())
        assert excinfo.value.shard == "s1"
        assert "[s1," in str(excinfo.value)

    def test_read_shard_payload_roundtrip(self, tmp_path, built):
        points, _ = built
        factory = partial(DistPermIndex, n_sites=5, site_strategy="first")
        path = tmp_path / "sharded.npz"
        with ShardedIndex(
            points, EuclideanDistance(), factory, n_shards=2
        ) as index:
            save_sharded(path, index, version=2)
            saved_count = int(len(index.shards[1].points))
        payload = read_shard_payload(path, 1)
        assert int(payload["count"]) == saved_count
        with pytest.raises(ValueError, match="no shard s7"):
            read_shard_payload(path, 7)


class TestV3Payloads:
    """The v3 page-aligned container: round trips under both backings,
    v2 compatibility, and corruption surfaced as PayloadCorruptError."""

    def _signatures(self, batches):
        return [
            [(n.index, round(n.distance, 9)) for n in batch]
            for batch in batches
        ]

    def test_v3_is_the_default_format(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        assert payload_format(path) == 3
        with open(path, "rb") as handle:
            assert handle.read(8) == b"RPRMCOD3"

    def test_mmap_backing_answers_identically(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        ram = load_distperm(path, points, EuclideanDistance())
        mapped = load_distperm(
            path, points, EuclideanDistance(), backing="mmap",
            cache_bytes=4096, block_elements=64,
        )
        try:
            assert mapped.backing == "mmap"
            assert ram.backing == "ram"
            queries = rng.random((6, 3))
            assert self._signatures(
                mapped.knn_approx_batch(queries, 5, budget=60)
            ) == self._signatures(ram.knn_approx_batch(queries, 5, budget=60))
            query = rng.random(3)
            np.testing.assert_array_equal(
                mapped.candidate_order(query), ram.candidate_order(query)
            )
            np.testing.assert_array_equal(
                mapped.query_footrules([query], 10),
                ram.query_footrules([query], 10),
            )
            np.testing.assert_array_equal(
                mapped.permutations, ram.permutations
            )
            assert mapped.unique_permutations() == ram.unique_permutations()
            assert mapped.packed().packed == ram.packed().packed
        finally:
            mapped.close()

    def test_mmap_residency_stays_under_budget(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        mapped = load_distperm(
            path, points, EuclideanDistance(), backing="mmap",
            cache_bytes=2048, block_elements=64,
        )
        try:
            store = mapped.code_store
            # Decoded total (400 codes x 8 bytes) dwarfs the budget.
            assert store.decoded_bytes_total() >= 2048
            mapped.knn_approx_batch(rng.random((4, 3)), 5, budget=60)
            assert store.peak_cache_bytes <= 2048
            assert store.cache_misses > 0
        finally:
            mapped.close()

    def test_add_points_rejected_on_mmap(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        mapped = load_distperm(
            path, points, EuclideanDistance(), backing="mmap"
        )
        try:
            with pytest.raises(RuntimeError, match="backing='ram'"):
                mapped.add_points(rng.random((3, 3)))
        finally:
            mapped.close()

    def test_v2_still_loads_ram_backed(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index, version=2)
        assert payload_format(path) == 2
        loaded = load_distperm(path, points, EuclideanDistance())
        assert loaded.backing == "ram"
        np.testing.assert_array_equal(loaded.permutations, index.permutations)

    def test_v2_mmap_rejected(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index, version=2)
        with pytest.raises(ValueError, match="version=3"):
            load_distperm(path, points, EuclideanDistance(), backing="mmap")

    @pytest.mark.parametrize("backing", ["ram", "mmap"])
    def test_truncated_v3_code_section(self, tmp_path, built, backing):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        blob = path.read_bytes()
        # The code section occupies the final page (with zero padding);
        # cut deep enough to remove real code bytes, not just padding.
        path.write_bytes(blob[:-4000])
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(
                path, points, EuclideanDistance(), backing=backing
            )
        error = excinfo.value
        assert error.shard is None
        assert error.byte_offset >= 0
        assert "truncated" in str(error)
        assert "byte offset" in str(error)

    @pytest.mark.parametrize("backing", ["ram", "mmap"])
    def test_bit_flipped_v3_code_section(self, tmp_path, built, backing):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        # Smash a byte run in the middle of the code section; k=7 gives
        # 13-bit codes, so an all-ones element decodes outside 7!.
        blob = bytearray(path.read_bytes())
        section_start = len(blob) - 4096  # last page holds the codes
        blob[section_start + 160:section_start + 166] = b"\xff" * 6
        path.write_bytes(bytes(blob))
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(
                path, points, EuclideanDistance(), backing=backing
            )
        error = excinfo.value
        assert error.shard is None
        assert error.byte_offset > 0
        assert "decodes outside" in str(error)

    @pytest.mark.parametrize("backing", ["ram", "mmap"])
    def test_wrong_width_v3_header(self, tmp_path, built, backing):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        blob = path.read_bytes()
        header_len = int.from_bytes(blob[8:16], "little")
        header = json.loads(blob[16:16 + header_len].decode("ascii"))
        shard_meta = header["shards"][0]
        shard_meta["codes"]["bit_width"] = shard_meta["codes"]["bit_width"] + 3
        raw = json.dumps(header).encode("ascii")
        # Rewriting in place needs the same header length: pad with
        # spaces (valid JSON whitespace) up to the original size.
        assert len(raw) <= header_len
        raw = raw + b" " * (header_len - len(raw))
        path.write_bytes(blob[:16] + raw + blob[16 + header_len:])
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(
                path, points, EuclideanDistance(), backing=backing
            )
        error = excinfo.value
        assert error.byte_offset == 0  # header-level damage
        assert "width" in str(error)

    def test_bad_magic_is_unrecognized(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.rpc"
        save_distperm(path, index)
        blob = bytearray(path.read_bytes())
        blob[0:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="not a recognized"):
            load_distperm(path, points, EuclideanDistance())


class TestV3Sharded:
    def _build(self, points, n_shards=3):
        factory = partial(DistPermIndex, n_sites=5, site_strategy="first")
        return ShardedIndex(
            points, EuclideanDistance(), factory, n_shards=n_shards
        )

    def _signatures(self, batches):
        return [
            [(n.index, round(n.distance, 9)) for n in batch]
            for batch in batches
        ]

    def test_sharded_v3_roundtrip_both_backings(self, tmp_path, built, rng):
        points, _ = built
        path = tmp_path / "sharded.rpc"
        with self._build(points) as index:
            save_sharded(path, index)
            queries = rng.random((5, 3))
            fresh = self._signatures(
                index.knn_approx_batch(queries, 5, budget=60)
            )
        assert payload_format(path) == 3
        with load_sharded(path, points, EuclideanDistance()) as ram:
            assert self._signatures(
                ram.knn_approx_batch(queries, 5, budget=60)
            ) == fresh
        with load_sharded(
            path, points, EuclideanDistance(), backing="mmap",
            cache_bytes=4096,
        ) as mapped:
            assert all(s.backing == "mmap" for s in mapped.shards)
            assert self._signatures(
                mapped.knn_approx_batch(queries, 5, budget=60)
            ) == fresh

    def test_sharded_v3_error_names_the_shard(self, tmp_path, built):
        points, _ = built
        path = tmp_path / "sharded.rpc"
        with self._build(points) as index:
            save_sharded(path, index)
        blob = path.read_bytes()
        header_len = int.from_bytes(blob[8:16], "little")
        header = json.loads(blob[16:16 + header_len].decode("ascii"))
        shard_meta = header["shards"][1]
        # +2 keeps the value single-digit (7 -> 9) so the rewritten
        # header still fits in the original byte span.
        shard_meta["codes"]["bit_width"] = shard_meta["codes"]["bit_width"] + 2
        raw = json.dumps(header).encode("ascii")
        assert len(raw) <= header_len
        raw = raw + b" " * (header_len - len(raw))
        path.write_bytes(blob[:16] + raw + blob[16 + header_len:])
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_sharded(path, points, EuclideanDistance())
        assert excinfo.value.shard == "s1"
        assert "[s1," in str(excinfo.value)

    def test_read_shard_payload_v3(self, tmp_path, built):
        points, _ = built
        path = tmp_path / "sharded.rpc"
        with self._build(points, n_shards=2) as index:
            save_sharded(path, index)
            saved_count = int(len(index.shards[1].points))
        payload = read_shard_payload(path, 1)
        assert int(payload["count"]) == saved_count
        assert "codes_packed" in payload
        mapped = read_shard_payload(path, 1, backing="mmap")
        assert int(mapped["count"]) == saved_count
        section = mapped["codes_section"]
        assert section["path"] == str(path)
        assert section["nbytes"] > 0
        with pytest.raises(ValueError, match="no shard s7"):
            read_shard_payload(path, 7)

    def test_member_table_cache_survives_rewrites(self, tmp_path, built):
        """The offset-table cache keys on (path, size, mtime): a rewrite
        with different contents must not serve stale offsets."""
        points, _ = built
        path = tmp_path / "sharded.rpc"
        with self._build(points, n_shards=2) as index:
            save_sharded(path, index)
        first = read_shard_payload(path, 0)
        with self._build(points, n_shards=3) as index:
            save_sharded(path, index)
        # Three shards now — shard 2 exists only in the rewritten file,
        # and shard 0 shrank; stale cached offsets would miss both.
        payload = read_shard_payload(path, 2)
        assert int(payload["count"]) > 0
        again = read_shard_payload(path, 0)
        assert int(again["count"]) < int(first["count"])
