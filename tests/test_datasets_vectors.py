"""Tests for vector database generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.vectors import (
    clustered_vectors,
    gaussian_vectors,
    latent_manifold_vectors,
    uniform_vectors,
)


class TestUniform:
    def test_shape_and_range(self, rng):
        points = uniform_vectors(100, 5, rng)
        assert points.shape == (100, 5)
        assert points.min() >= 0.0
        assert points.max() <= 1.0

    def test_deterministic_with_seed(self):
        a = uniform_vectors(10, 3, np.random.default_rng(1))
        b = uniform_vectors(10, 3, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            uniform_vectors(0, 3)
        with pytest.raises(ValueError):
            uniform_vectors(3, 0)


class TestGaussian:
    def test_shape(self, rng):
        assert gaussian_vectors(50, 4, rng).shape == (50, 4)

    def test_spectrum_scales_axes(self, rng):
        spectrum = [10.0, 0.1]
        points = gaussian_vectors(3000, 2, rng, spectrum=spectrum)
        assert points[:, 0].std() > 20 * points[:, 1].std()

    def test_spectrum_length_checked(self, rng):
        with pytest.raises(ValueError):
            gaussian_vectors(10, 3, rng, spectrum=[1.0, 2.0])

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            gaussian_vectors(0, 3)


class TestClustered:
    def test_shape(self, rng):
        assert clustered_vectors(40, 3, n_clusters=4, rng=rng).shape == (40, 3)

    def test_tight_spread_concentrates(self, rng):
        points = clustered_vectors(500, 2, n_clusters=3, spread=1e-4, rng=rng)
        # With three tiny clusters, round to find at most 3 distinct cells.
        rounded = np.round(points, 2)
        assert len(np.unique(rounded, axis=0)) <= 3 + 20  # small spill allowed

    def test_rejects_no_clusters(self, rng):
        with pytest.raises(ValueError):
            clustered_vectors(10, 2, n_clusters=0, rng=rng)


class TestLatentManifold:
    def test_shape(self, rng):
        assert latent_manifold_vectors(30, 20, 2, rng=rng).shape == (30, 20)

    def test_low_rank_up_to_noise(self, rng):
        points = latent_manifold_vectors(400, 30, 2, noise=0.0, rng=rng)
        centered = points - points.mean(axis=0)
        singular = np.linalg.svd(centered, compute_uv=False)
        # 2 latent dims -> 4 feature dims (sin lift) bound the rank.
        assert singular[4] < 1e-8 * singular[0]

    def test_rejects_bad_latent_dim(self, rng):
        with pytest.raises(ValueError):
            latent_manifold_vectors(10, 5, 6, rng=rng)
        with pytest.raises(ValueError):
            latent_manifold_vectors(10, 5, 0, rng=rng)

    def test_deterministic(self):
        a = latent_manifold_vectors(15, 10, 3, rng=np.random.default_rng(2))
        b = latent_manifold_vectors(15, 10, 3, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(a, b)
