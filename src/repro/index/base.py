"""Common index interface: exact range / kNN queries with cost accounting."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.metrics.base import CountingMetric, Metric

__all__ = ["Neighbor", "SearchStats", "Index"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One query answer: database index plus its distance to the query."""

    distance: float
    index: int


@dataclass
class SearchStats:
    """Distance evaluations spent building and querying an index."""

    build_distances: int = 0
    query_distances: int = 0
    queries: int = 0

    @property
    def distances_per_query(self) -> float:
        return self.query_distances / self.queries if self.queries else 0.0


class Index(ABC):
    """Base class for proximity-search indexes.

    Subclasses implement :meth:`_range_impl` and may override
    :meth:`_knn_impl`; the public methods validate arguments and keep the
    distance-evaluation accounts.  ``self.metric`` is a
    :class:`~repro.metrics.base.CountingMetric` wrapping the supplied
    metric, so every evaluation anywhere in the index is counted.
    """

    def __init__(self, points: Sequence[Any], metric: Metric):
        if len(points) == 0:
            raise ValueError("cannot index an empty database")
        self.points = points
        self.metric = CountingMetric(metric)
        self.stats = SearchStats()
        self._build()
        self.stats.build_distances = self.metric.count
        self.metric.reset()

    @abstractmethod
    def _build(self) -> None:
        """Construct the index; metric evaluations are charged to build."""

    @abstractmethod
    def _range_impl(self, query: Any, radius: float) -> List[Neighbor]:
        """Return all points within ``radius`` of ``query`` (inclusive)."""

    def _knn_impl(self, query: Any, k: int) -> List[Neighbor]:
        """Default kNN: shrink a range query via the growing result set."""
        # Generic fallback: scan with the current k-th distance as radius.
        # Subclasses with real pruning override this.
        results = self._range_impl(query, float("inf"))
        results.sort()
        return results[:k]

    def range_query(self, query: Any, radius: float) -> List[Neighbor]:
        """Return every database element within ``radius`` of ``query``.

        Results are sorted by distance (ties by index) and *exact*: the
        same set a linear scan returns.
        """
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        before = self.metric.count
        results = sorted(self._range_impl(query, radius))
        self.stats.query_distances += self.metric.count - before
        self.stats.queries += 1
        return results

    def knn_query(self, query: Any, k: int) -> List[Neighbor]:
        """Return the ``k`` nearest database elements, sorted by distance."""
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, len(self.points))
        before = self.metric.count
        results = sorted(self._knn_impl(query, k))[:k]
        self.stats.query_distances += self.metric.count - before
        self.stats.queries += 1
        return results

    def reset_stats(self) -> None:
        """Zero the query-cost accounts (build cost is preserved)."""
        self.stats.query_distances = 0
        self.stats.queries = 0
        self.metric.reset()

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={len(self.points)})"
