"""Cross-index exactness: every index returns the linear-scan answers.

This is the core integration guarantee of the index substrate: range
queries agree element-for-element and kNN queries agree on the distance
multiset (tie-broken index choices may differ between algorithms).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index import (
    AESA,
    DistPermIndex,
    GHTree,
    IAESA,
    LinearScan,
    ListOfClusters,
    PivotIndex,
    VPTree,
)
from repro.metrics import EuclideanDistance, LevenshteinDistance

INDEX_FACTORIES = {
    "pivots": lambda pts, m: PivotIndex(
        pts, m, n_pivots=6, rng=np.random.default_rng(1)
    ),
    "aesa": lambda pts, m: AESA(pts, m),
    "iaesa": lambda pts, m: IAESA(pts, m),
    "distperm": lambda pts, m: DistPermIndex(
        pts, m, n_sites=6, rng=np.random.default_rng(2)
    ),
    "vptree": lambda pts, m: VPTree(pts, m, rng=np.random.default_rng(3)),
    "ghtree": lambda pts, m: GHTree(pts, m, rng=np.random.default_rng(4)),
    "listclusters": lambda pts, m: ListOfClusters(
        pts, m, bucket_size=12, rng=np.random.default_rng(5)
    ),
}


def _range_signature(index, query, radius):
    return [(n.index, round(n.distance, 9)) for n in index.range_query(query, radius)]


def _knn_distances(index, query, k):
    return sorted(round(n.distance, 9) for n in index.knn_query(query, k))


@pytest.fixture(scope="module")
def vector_setup():
    rng = np.random.default_rng(42)
    points = rng.random((250, 3))
    queries = rng.random((8, 3))
    metric = EuclideanDistance()
    return points, queries, metric, LinearScan(points, metric)


@pytest.fixture(scope="module")
def string_setup():
    rng = np.random.default_rng(43)
    letters = "abcde"
    words = list({
        "".join(letters[i] for i in rng.integers(0, 5, size=rng.integers(2, 8)))
        for _ in range(200)
    })
    queries = ["abc", "edcba", "aaaa"]
    metric = LevenshteinDistance()
    return words, queries, metric, LinearScan(words, metric)


@pytest.mark.parametrize("name", INDEX_FACTORIES)
class TestVectorExactness:
    def test_range_queries_match_linear(self, name, vector_setup):
        points, queries, metric, oracle = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        for query in queries:
            for radius in (0.05, 0.2, 0.6, 2.0):
                assert _range_signature(index, query, radius) == _range_signature(
                    oracle, query, radius
                )

    def test_knn_queries_match_linear(self, name, vector_setup):
        points, queries, metric, oracle = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        for query in queries:
            for k in (1, 3, 10, 40):
                assert _knn_distances(index, query, k) == _knn_distances(
                    oracle, query, k
                )

    def test_radius_zero(self, name, vector_setup):
        points, _, metric, oracle = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        # Query sitting exactly on a database point.
        query = points[17]
        result = index.range_query(query, 0.0)
        assert any(n.index == 17 and n.distance == 0.0 for n in result)

    def test_k_larger_than_database(self, name, vector_setup):
        points, queries, metric, oracle = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        result = index.knn_query(queries[0], len(points) + 50)
        assert len(result) == len(points)


@pytest.mark.parametrize("name", INDEX_FACTORIES)
class TestStringExactness:
    """Discrete metrics are tie-heavy: the hard case for pruning logic."""

    def test_range_queries_match_linear(self, name, string_setup):
        words, queries, metric, oracle = string_setup
        index = INDEX_FACTORIES[name](words, metric)
        for query in queries:
            for radius in (0, 1, 2, 4):
                assert _range_signature(index, query, radius) == _range_signature(
                    oracle, query, radius
                )

    def test_knn_queries_match_linear(self, name, string_setup):
        words, queries, metric, oracle = string_setup
        index = INDEX_FACTORIES[name](words, metric)
        for query in queries:
            for k in (1, 5, 20):
                assert _knn_distances(index, query, k) == _knn_distances(
                    oracle, query, k
                )


@pytest.mark.parametrize("name", INDEX_FACTORIES)
class TestCommonBehaviour:
    def test_rejects_empty_database(self, name):
        with pytest.raises(ValueError):
            INDEX_FACTORIES[name]([], EuclideanDistance())

    def test_rejects_negative_radius(self, name, vector_setup):
        points, queries, metric, _ = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        with pytest.raises(ValueError):
            index.range_query(queries[0], -1.0)

    def test_rejects_k_zero(self, name, vector_setup):
        points, queries, metric, _ = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        with pytest.raises(ValueError):
            index.knn_query(queries[0], 0)

    def test_stats_accumulate(self, name, vector_setup):
        points, queries, metric, _ = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        index.reset_stats()
        index.knn_query(queries[0], 3)
        index.range_query(queries[1], 0.2)
        assert index.stats.queries == 2
        assert index.stats.query_distances > 0
        assert index.stats.distances_per_query > 0

    def test_len_and_repr(self, name, vector_setup):
        points, _, metric, _ = vector_setup
        index = INDEX_FACTORIES[name](points, metric)
        assert len(index) == len(points)
        assert str(len(points)) in repr(index)
