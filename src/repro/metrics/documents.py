"""Document-vector metrics.

The SISAP sample databases ``long`` and ``short`` hold feature vectors
extracted from news articles, compared by the angle between vectors.  The
angular distance ``arccos(cos_similarity)`` is a true metric on the unit
sphere (it is the geodesic distance), unlike raw cosine dissimilarity
``1 - cos`` which violates the triangle inequality; both are provided, and
the experiments use the angular form.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Metric

__all__ = ["AngularDistance", "CosineDissimilarity"]


def _cosine_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    na = np.linalg.norm(a, axis=1)
    nb = np.linalg.norm(b, axis=1)
    if np.any(na == 0) or np.any(nb == 0):
        raise ValueError("angular distance is undefined for the zero vector")
    cos = (a @ b.T) / np.outer(na, nb)
    return np.clip(cos, -1.0, 1.0)


class AngularDistance(Metric):
    """Angle between vectors, in radians — the geodesic sphere metric."""

    name = "angular"

    def distance(self, x, y) -> float:
        return float(np.arccos(_cosine_matrix(x, y)[0, 0]))

    def matrix(self, xs, ys) -> np.ndarray:
        return np.arccos(_cosine_matrix(xs, ys))

    def pairwise(self, xs) -> np.ndarray:
        out = self.matrix(xs, xs)
        out = 0.5 * (out + out.T)
        np.fill_diagonal(out, 0.0)
        return out


class CosineDissimilarity(Metric):
    """``1 - cos(x, y)``; *not* a metric — kept as a baseline comparator.

    :func:`repro.metrics.validation.check_triangle_inequality` demonstrates
    the violation; the experiments use :class:`AngularDistance` instead.
    """

    name = "cosine"

    def distance(self, x, y) -> float:
        return float(1.0 - _cosine_matrix(x, y)[0, 0])

    def matrix(self, xs, ys) -> np.ndarray:
        return 1.0 - _cosine_matrix(xs, ys)
