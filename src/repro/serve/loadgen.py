"""Open-loop load generation for the query service.

The honest way to measure a service's sustainable throughput is an
*open-loop* driver: arrivals come from a Poisson process at a fixed
offered rate, independent of how fast the server answers.  A
closed-loop client (send, wait, send) self-throttles when the server
slows down, hiding queueing collapse; the open loop keeps offering
load, so latency percentiles blow up exactly when the offered rate
passes the service's capacity — which is the number we want.

:func:`run_open_loop` drives one :class:`~repro.serve.client.AsyncClient`
connection with one asyncio task per arrival (requests multiplex on the
socket by id) and returns a :class:`LoadReport`: achieved qps, rejected
and errored counts, degraded responses, and end-to-end latency
percentiles over every completed request.  Inter-arrival gaps are drawn
from a seeded generator, so a sweep's points differ only in the knob
under study.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.serve.client import AsyncClient, ServerBusyError, ServerError

__all__ = ["LoadReport", "run_open_loop"]


@dataclass
class LoadReport:
    """One open-loop run: offered vs achieved rate + latency tails."""

    offered_qps: float
    duration_s: float
    sent: int = 0
    answered: int = 0
    rejected: int = 0
    errored: int = 0
    degraded: int = 0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.answered / self.duration_s

    def percentile_s(self, q: float) -> Optional[float]:
        if not self.latencies_s:
            return None
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def to_dict(self) -> dict:
        return {
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "duration_s": self.duration_s,
            "sent": self.sent,
            "answered": self.answered,
            "rejected": self.rejected,
            "errored": self.errored,
            "degraded": self.degraded,
            "p50_s": self.percentile_s(50.0),
            "p99_s": self.percentile_s(99.0),
            "p999_s": self.percentile_s(99.9),
        }


async def run_open_loop(
    *,
    unix_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    queries,
    op: str = "knn",
    k: int = 5,
    radius: float = 0.0,
    budget: Optional[int] = None,
    qps: float = 100.0,
    duration_s: float = 5.0,
    seed: int = 0,
    connections: int = 1,
) -> LoadReport:
    """Offer ``qps`` Poisson arrivals for ``duration_s``; report tails.

    ``queries`` is the pool each arrival samples one query from — a
    float64 matrix for vector indexes, a list of strings for string
    indexes.  Rejected (busy) and errored arrivals are counted, not
    retried: an open loop measures what the service absorbs at this
    offered rate, so resubmitting would double-count load.
    """
    if qps <= 0:
        raise ValueError("qps must be > 0")
    if connections < 1:
        raise ValueError("connections must be >= 1")
    rng = np.random.default_rng(seed)
    n_pool = len(queries)
    if n_pool == 0:
        raise ValueError("query pool is empty")
    clients = [
        await AsyncClient.connect(unix_path=unix_path, host=host, port=port)
        for _ in range(connections)
    ]
    report = LoadReport(offered_qps=qps, duration_s=duration_s)
    loop = asyncio.get_event_loop()

    async def _one(client: AsyncClient, row: int) -> None:
        if isinstance(queries, np.ndarray):
            payload = queries[row : row + 1]
        else:
            payload = [queries[row]]
        started = loop.time()
        try:
            if op == "knn":
                result = await client.knn(payload, k)
            elif op == "range":
                result = await client.range_search(payload, radius)
            elif op == "knn-approx":
                result = await client.knn_approx(payload, k, budget=budget)
            else:
                raise ValueError(f"unknown op {op!r}")
        except ServerBusyError:
            report.rejected += 1
            return
        except (ServerError, ConnectionError):
            report.errored += 1
            return
        report.latencies_s.append(loop.time() - started)
        report.answered += 1
        if result.degraded:
            report.degraded += 1

    try:
        tasks: List[asyncio.Task] = []
        started = loop.time()
        deadline = started + duration_s
        next_at = started
        i = 0
        while True:
            # Exponential inter-arrival gaps: a Poisson offered load.
            next_at += rng.exponential(1.0 / qps)
            if next_at >= deadline:
                break
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            row = int(rng.integers(0, n_pool))
            client = clients[i % connections]
            tasks.append(asyncio.ensure_future(_one(client, row)))
            report.sent += 1
            i += 1
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        report.duration_s = loop.time() - started
    finally:
        for client in clients:
            await client.close()
    return report


def run_open_loop_sync(**kwargs) -> LoadReport:
    """Run :func:`run_open_loop` on a fresh event loop (bench drivers)."""
    return asyncio.run(run_open_loop(**kwargs))
