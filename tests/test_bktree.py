"""Tests for the Burkhard–Keller tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dictionaries import synthetic_dictionary
from repro.index import BKTree, LinearScan
from repro.metrics import (
    EuclideanDistance,
    HammingDistance,
    LevenshteinDistance,
    PrefixDistance,
)


@pytest.fixture(scope="module")
def dictionary():
    return synthetic_dictionary("English", 400, np.random.default_rng(0))


@pytest.fixture(scope="module")
def oracle(dictionary):
    return LinearScan(dictionary, LevenshteinDistance())


class TestExactness:
    def test_range_matches_linear(self, dictionary, oracle):
        tree = BKTree(dictionary, LevenshteinDistance())
        for query in ("hello", "aaa", dictionary[17]):
            for radius in (0, 1, 2, 4):
                got = [(n.index, n.distance)
                       for n in tree.range_query(query, radius)]
                want = [(n.index, n.distance)
                        for n in oracle.range_query(query, radius)]
                assert got == want

    def test_knn_matches_linear(self, dictionary, oracle):
        tree = BKTree(dictionary, LevenshteinDistance())
        for query in ("hello", "zzz"):
            for k in (1, 5, 25):
                got = sorted(n.distance for n in tree.knn_query(query, k))
                want = sorted(n.distance for n in oracle.knn_query(query, k))
                assert got == want

    def test_duplicates_handled(self):
        words = ["abc", "abd", "abc", "xyz", "abc"]
        tree = BKTree(words, LevenshteinDistance())
        result = tree.range_query("abc", 0)
        assert {n.index for n in result} == {0, 2, 4}

    def test_prefix_metric_supported(self):
        words = ["a", "ab", "abc", "b", "ba"]
        tree = BKTree(words, PrefixDistance())
        oracle = LinearScan(words, PrefixDistance())
        for radius in (1, 2, 3):
            got = [(n.index, n.distance) for n in tree.range_query("ab", radius)]
            want = [(n.index, n.distance) for n in oracle.range_query("ab", radius)]
            assert got == want

    def test_hamming_metric_supported(self):
        words = ["0000", "0001", "0011", "1111", "1010"]
        tree = BKTree(words, HammingDistance())
        result = tree.range_query("0000", 1)
        assert {n.index for n in result} == {0, 1}


class TestCostAndValidation:
    def test_prunes_versus_linear(self, dictionary, oracle):
        tree = BKTree(dictionary, LevenshteinDistance())
        tree.reset_stats()
        for query in ("hello", "query", "test"):
            tree.range_query(query, 1)
        assert tree.stats.distances_per_query < 0.8 * len(dictionary)

    def test_rejects_continuous_metric(self, rng):
        points = rng.random((10, 2))
        with pytest.raises(ValueError):
            BKTree(list(points), EuclideanDistance())

    def test_build_cost_counted(self, dictionary):
        tree = BKTree(dictionary, LevenshteinDistance())
        # Each insertion walks at least one comparison.
        assert tree.stats.build_distances >= len(dictionary) - 1
