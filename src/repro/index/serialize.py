"""Persisting and reloading DistPermIndex data.

A real deployment builds the permutation index once and serves queries
from it; this module saves the index payload — sites, permutation table,
bit-packed ids — to a single ``.npz`` file and reconstructs a queryable
index against the original database.  The stored payload is the compact
representation of Corollary 8, so file sizes track the paper's bit
accounting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.core.bitpack import unpack_ids
from repro.index.distperm import DistPermIndex
from repro.metrics.base import Metric

__all__ = ["save_distperm", "load_distperm"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_distperm(path: PathLike, index: DistPermIndex) -> None:
    """Write the index payload (not the database) to a ``.npz`` file."""
    store = index.packed()
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        site_indices=np.asarray(index.site_indices, dtype=np.int64),
        table=store.table.astype(np.int64),
        packed=np.frombuffer(store.packed, dtype=np.uint8),
        bit_width=np.int64(store.bit_width),
        count=np.int64(store.count),
    )


def load_distperm(
    path: PathLike, points: Sequence, metric: Metric
) -> DistPermIndex:
    """Reconstruct a DistPermIndex from a saved payload.

    ``points`` must be the database the index was built on (the payload
    stores only site indices and permutations); a mismatched database is
    detected by re-deriving one site permutation and comparing.
    """
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version}")
        site_indices = [int(i) for i in data["site_indices"]]
        table = data["table"]
        packed = data["packed"].tobytes()
        bit_width = int(data["bit_width"])
        count = int(data["count"])
    if count != len(points):
        raise ValueError(
            f"payload describes {count} elements, database has {len(points)}"
        )
    if site_indices and max(site_indices) >= len(points):
        raise ValueError("site indices exceed the database size")
    index = DistPermIndex.__new__(DistPermIndex)
    # Rebuild state without recomputing n x k distances.
    from repro.index.base import SearchStats
    from repro.metrics.base import CountingMetric

    index.points = points
    index.metric = CountingMetric(metric)
    index.stats = SearchStats()
    # Constructor state __init__ would have set: a loaded index mirrors a
    # construction with explicit site indices.
    index._requested_sites = len(site_indices)
    index._site_strategy = "random"
    index._rng = None
    index._site_indices = site_indices
    index.site_indices = list(site_indices)
    index.sites = [points[i] for i in site_indices]
    ids = unpack_ids(packed, bit_width, count).astype(np.int64)
    if ids.size and int(ids.max()) >= table.shape[0]:
        raise ValueError("corrupt payload: id exceeds table size")
    index.table = table
    index.ids = ids
    index.permutations = table[ids]
    # Rebuild the derived caches of _build (the batched knn_approx path
    # reads _perm_positions; loading must leave no attribute behind).
    index._cache_perm_positions()
    # Consistency check: the first site's own permutation must rank that
    # site at distance zero, i.e. begin with the lowest-index zero-distance
    # site — cheap evidence the database matches the payload.
    if site_indices:
        probe = site_indices[0]
        derived = index.query_permutation(points[probe])
        if not np.array_equal(derived, index.permutations[probe]):
            raise ValueError(
                "database does not match payload (permutation probe failed)"
            )
        index.metric.reset()
    return index
