"""The columnar result plane: arrays == Neighbor lists, everywhere.

ISSUE 8's tentpole replaced the internal ``list[Neighbor]`` result plane
with :class:`~repro.index.base.NeighborArrays` columns end to end —
index kernels, the sharded column merge, and the resident worker wire.
The public API is a thin boundary view over the columns, so the binding
contract is entry-for-entry equality: for every index, metric, and
operation, the ``*_batch_arrays`` columns must decode to exactly the
``Neighbor`` lists the public API returns (and the looped single-query
API agrees row for row).  On top of that, this module pins the sharded
merge's ``(distance, index)`` tie-break order, the global-footrule
budget split (including its degrade-mode budget redistribution, checked
against the committed ``BENCH_resilience.json`` curve), the resident
build path, and the ``reply_bytes`` observability of the array-reply
IPC format.
"""

from __future__ import annotations

import json
import pickle
from functools import partial
from pathlib import Path

import numpy as np
import pytest

from repro.index import (
    AESA,
    BKTree,
    DistPermIndex,
    GHTree,
    IAESA,
    LinearScan,
    ListOfClusters,
    PivotIndex,
    ShardedIndex,
    VPTree,
)
from repro.index.base import NeighborArrays
from repro.metrics import EuclideanDistance, LevenshteinDistance
from repro.parallel.faults import FaultSpec
from repro.parallel.workerpool import QueryPolicy

REPO_ROOT = Path(__file__).resolve().parent.parent

INDEX_FACTORIES = {
    "linear": lambda pts, m: LinearScan(pts, m),
    "pivots": lambda pts, m: PivotIndex(
        pts, m, n_pivots=6, rng=np.random.default_rng(1)
    ),
    "aesa": lambda pts, m: AESA(pts, m),
    "iaesa": lambda pts, m: IAESA(pts, m),
    "distperm": lambda pts, m: DistPermIndex(
        pts, m, n_sites=6, rng=np.random.default_rng(2)
    ),
    "vptree": lambda pts, m: VPTree(pts, m, rng=np.random.default_rng(3)),
    "bktree": lambda pts, m: BKTree(pts, m),
    "ghtree": lambda pts, m: GHTree(pts, m, rng=np.random.default_rng(4)),
    "listclusters": lambda pts, m: ListOfClusters(
        pts, m, bucket_size=12, rng=np.random.default_rng(5)
    ),
}


def _signature(neighbors):
    return [(n.index, round(n.distance, 9)) for n in neighbors]


@pytest.fixture(scope="module")
def vector_setup():
    rng = np.random.default_rng(88)
    points = rng.random((150, 3))
    queries = rng.random((7, 3))
    return points, queries, EuclideanDistance


@pytest.fixture(scope="module")
def string_setup():
    rng = np.random.default_rng(89)
    letters = "abc"
    words = list({
        "".join(letters[i] for i in rng.integers(0, 3, size=rng.integers(2, 7)))
        for _ in range(140)
    })
    queries = ["ab", "cba", "aaaa", "bc"]
    return words, queries, LevenshteinDistance


def _assert_well_formed(rows: NeighborArrays, n_queries: int):
    assert rows.distances.dtype == np.float64
    assert rows.indices.dtype == np.int64
    assert rows.offsets.dtype == np.int64
    assert rows.offsets.shape == (n_queries + 1,)
    assert rows.offsets[0] == 0
    assert rows.offsets[-1] == rows.indices.shape[0]
    assert rows.distances.shape == rows.indices.shape
    assert np.all(np.diff(rows.offsets) >= 0)


def _assert_arrays_match_lists(index, queries, *, k, radius, budget):
    """Columns, public lists, and looped singles agree entry for entry."""
    cases = [
        (
            index.knn_batch_arrays(queries, k),
            index.knn_batch(queries, k),
            lambda q: index.knn_query(q, k),
        ),
        (
            index.range_batch_arrays(queries, radius),
            index.range_batch(queries, radius),
            lambda q: index.range_query(q, radius),
        ),
        (
            index.knn_approx_batch_arrays(queries, k, budget=budget),
            index.knn_approx_batch(queries, k, budget=budget),
            lambda q: index.knn_approx(q, k, budget=budget),
        ),
    ]
    for rows, lists, single in cases:
        _assert_well_formed(rows, len(queries))
        assert len(lists) == len(queries)
        for q, (query, row) in enumerate(zip(queries, lists)):
            assert _signature(rows.row_list(q)) == _signature(row)
            assert _signature(single(query)) == _signature(row)


@pytest.mark.parametrize("name", INDEX_FACTORIES)
class TestArraysMatchLists:
    """The property grid: every index x metric x op, single + batch."""

    def test_vector_metric(self, name, vector_setup):
        if name == "bktree":
            pytest.skip("BKTree requires an integer-valued metric")
        points, queries, metric_cls = vector_setup
        index = INDEX_FACTORIES[name](points, metric_cls())
        _assert_arrays_match_lists(
            index, queries, k=6, radius=0.35, budget=40
        )

    def test_string_metric(self, name, string_setup):
        words, queries, metric_cls = string_setup
        index = INDEX_FACTORIES[name](words, metric_cls())
        _assert_arrays_match_lists(index, queries, k=8, radius=2, budget=40)


class TestShardedMergeTieBreak:
    """The vectorized column merge keeps global (distance, index) order.

    Levenshtein over short words is tie-saturated: most merged rows mix
    equal distances contributed by different shards, so any merge that
    loses the global ``(distance, index)`` lexicographic order — e.g.
    by leaving results shard-major within an equal-distance run — fails
    against the unsharded answer.
    """

    @staticmethod
    def _setup():
        rng = np.random.default_rng(90)
        letters = "ab"
        words = [
            "".join(letters[i] for i in rng.integers(0, 2, size=n))
            for n in rng.integers(2, 6, size=160)
        ]
        queries = ["ab", "ba", "aabb", "b"]
        return words, queries

    def test_matches_unsharded_under_heavy_ties(self):
        words, queries = self._setup()
        metric = LevenshteinDistance()
        reference = LinearScan(words, metric)
        with ShardedIndex(
            words, metric, LinearScan, n_shards=4, workers=None
        ) as sharded:
            for k in (1, 5, 20):
                assert _signature_rows(
                    sharded.knn_batch(queries, k)
                ) == _signature_rows(reference.knn_batch(queries, k))
            assert _signature_rows(
                sharded.range_batch(queries, 2)
            ) == _signature_rows(reference.range_batch(queries, 2))

    def test_equal_distance_runs_sorted_by_global_index(self):
        words, queries = self._setup()
        metric = LevenshteinDistance()
        with ShardedIndex(
            words, metric, LinearScan, n_shards=4, workers=None
        ) as sharded:
            rows = sharded.knn_batch(queries, 25)
        saw_cross_shard_tie = False
        shard_size = (len(words) + 3) // 4
        for row in rows:
            for a, b in zip(row, row[1:]):
                assert (a.distance, a.index) < (b.distance, b.index)
                if a.distance == b.distance and (
                    a.index // shard_size != b.index // shard_size
                ):
                    saw_cross_shard_tie = True
        assert saw_cross_shard_tie, "setup no longer exercises the merge"


def _signature_rows(rows):
    return [_signature(row) for row in rows]


@pytest.fixture(scope="module")
def split_setup():
    rng = np.random.default_rng(91)
    letters = "abcde"
    words = list({
        "".join(letters[i] for i in rng.integers(0, 5, size=rng.integers(3, 9)))
        for _ in range(600)
    })
    picks = rng.choice(len(words), size=30, replace=False)
    queries = [words[int(i)] for i in picks]
    return words, queries


class TestGlobalBudgetSplit:
    """The global-footrule budget split: selection, errors, determinism."""

    INNER = staticmethod(
        partial(DistPermIndex, n_sites=8, site_strategy="first")
    )

    def test_auto_selects_global_for_distperm(self, split_setup):
        words, _ = split_setup
        with ShardedIndex(
            words, LevenshteinDistance(), self.INNER, n_shards=3,
            workers=None,
        ) as index:
            assert index._budget_split == "auto"
            assert index._use_global_split(50)
            assert not index._use_global_split(None)

    def test_explicit_global_without_footrules_raises(self, split_setup):
        words, _ = split_setup
        with pytest.raises(TypeError, match="footrule"):
            ShardedIndex(
                words, LevenshteinDistance(), LinearScan, n_shards=3,
                workers=None, budget_split="global",
            )

    def test_unknown_split_rejected(self, split_setup):
        words, _ = split_setup
        with pytest.raises(ValueError, match="budget_split"):
            ShardedIndex(
                words, LevenshteinDistance(), self.INNER, n_shards=3,
                workers=None, budget_split="sideways",
            )

    def test_global_allocation_sums_to_budget(self, split_setup):
        """The merged ranking hands out exactly ``budget`` candidate
        slots per query, split across the shards."""
        words, queries = split_setup
        budget = 60
        with ShardedIndex(
            words, LevenshteinDistance(), self.INNER, n_shards=3,
            workers=None, budget_split="global",
        ) as index:
            footrules = [
                shard.query_footrules(queries, budget)
                for shard in index.shards
            ]
            allocations = index._allocate_budget(
                footrules, [0, 1, 2], budget, len(queries)
            )
            total = sum(allocations.values())
            assert np.all(total == budget)
            # The signal is live: not every query splits evenly.
            stacked = np.stack([allocations[s] for s in (0, 1, 2)])
            assert np.any(stacked != budget // 3)

    def test_serial_and_resident_agree(self, split_setup):
        words, queries = split_setup
        metric = LevenshteinDistance()
        with ShardedIndex(
            words, metric, self.INNER, n_shards=3, workers=None,
            budget_split="global",
        ) as serial:
            expected = _signature_rows(
                serial.knn_approx_batch(queries, 5, budget=80)
            )
        with ShardedIndex(
            words, metric, self.INNER, n_shards=3, workers=2,
            resident=True, budget_split="global",
        ) as resident:
            got = _signature_rows(
                resident.knn_approx_batch(queries, 5, budget=80)
            )
        assert got == expected

    def test_per_query_budget_arrays_rejected(self, split_setup):
        words, queries = split_setup
        with ShardedIndex(
            words, LevenshteinDistance(), self.INNER, n_shards=3,
            workers=None,
        ) as index:
            with pytest.raises(TypeError, match="per-query budget"):
                index.knn_approx_batch(
                    queries, 5, budget=np.full(len(queries), 20)
                )


class TestDegradeBudgetRedistribution:
    """Losing a shard redistributes its budget share under the global split.

    The committed ``BENCH_resilience.json`` curve was measured with the
    proportional split, where a dead shard's budget share is simply
    gone: the degraded answer retains only ~0.49-0.59 of full recall.
    The global split re-ranks over the surviving shards' footrules, so
    the whole budget is spent on live candidates and degraded recall
    must beat the unredistributed baseline (a proportional split over
    the same surviving shards at the same total budget).
    """

    #: The degraded recall measured before budget redistribution
    #: (proportional split, PR 7's committed BENCH_resilience.json):
    #: a dead shard's budget share was simply lost, so the degraded
    #: fraction decayed from 0.59 to 0.49 of full recall as budget grew.
    PROPORTIONAL_DEGRADED = {
        100: 0.110, 250: 0.1428, 500: 0.1822, 1000: 0.2394, 2000: 0.3142,
    }

    def test_committed_curve_beats_unredistributed_baseline(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_resilience.json").read_text()
        )
        curve = committed["degraded_recall_curve"]
        assert [p["budget"] for p in curve] == [100, 250, 500, 1000, 2000]
        for point in curve:
            baseline = self.PROPORTIONAL_DEGRADED[point["budget"]]
            assert point["recall_degraded"] > baseline
            # Redistribution also stops the fraction's decay with
            # budget (it fell to 0.4874 at budget 2000 without it).
            assert point["degraded_fraction"] >= 0.5

    def test_redistribution_beats_unredistributed_baseline(self, split_setup):
        words, queries = split_setup
        metric = LevenshteinDistance()
        k, budget, n_shards = 10, 120, 3
        exact = LinearScan(words, metric).knn_batch(queries, k)
        exact_ids = [{n.index for n in row} for row in exact]

        def recall(rows):
            return float(np.mean([
                len({n.index for n in row} & ids) / len(ids)
                for row, ids in zip(rows, exact_ids)
            ]))

        faults = [FaultSpec("kill", shard=0, request=1, generation=0)]
        policy = QueryPolicy(retries=0, on_partial="degrade")
        recalls = {}
        for split in ("proportional", "global"):
            with ShardedIndex(
                words, metric, self.INNER, n_shards=n_shards,
                resident=True, policy=policy, faults=list(faults),
                budget_split=split,
            ) as index:
                rows = index.knn_approx_batch(queries, k, budget=budget)
                assert index.stats.degraded
                assert index.stats.shards_answered == n_shards - 1
                recalls[split] = recall(rows)
        assert recalls["global"] >= recalls["proportional"]

    INNER = staticmethod(
        partial(DistPermIndex, n_sites=8, site_strategy="first")
    )


class TestResidentBuild:
    """Resident workers build their own shards (no stateless executor)."""

    def test_resident_build_matches_serial(self, split_setup):
        words, queries = split_setup
        metric = LevenshteinDistance()
        inner = partial(DistPermIndex, n_sites=8, site_strategy="first")
        with ShardedIndex(
            words, metric, inner, n_shards=3, workers=None
        ) as serial:
            expected = _signature_rows(serial.knn_batch(queries, 5))
            expected_build = serial.stats.build_distances
        with ShardedIndex(
            words, metric, inner, n_shards=3, workers=2, resident=True
        ) as resident:
            assert resident.stats.build_distances == expected_build
            got = _signature_rows(resident.knn_batch(queries, 5))
        assert got == expected

    def test_respawn_rebuilds_from_build_source(self, split_setup):
        """A killed worker rebuilds its shard deterministically."""
        words, queries = split_setup
        metric = LevenshteinDistance()
        faults = [FaultSpec("kill", shard=1, request=1, generation=0)]
        with ShardedIndex(
            words, metric, LinearScan, n_shards=3, workers=2,
            resident=True, faults=faults,
        ) as faulted:
            first = _signature_rows(faulted.knn_batch(queries, 5))
            second = _signature_rows(faulted.knn_batch(queries, 5))
        with ShardedIndex(
            words, metric, LinearScan, n_shards=3, workers=None
        ) as serial:
            expected = _signature_rows(serial.knn_batch(queries, 5))
        assert first == expected
        assert second == expected


class TestReplyBytesObservability:
    """The array-reply wire is visible (and cheaper than pickled lists)."""

    def test_stats_and_report_carry_reply_bytes(self, split_setup):
        from repro.experiments.harness import run_query_workload

        words, queries = split_setup
        metric = LevenshteinDistance()
        with ShardedIndex(
            words, metric, LinearScan, n_shards=3, workers=2,
            resident=True,
        ) as index:
            rows = index.knn_batch(queries, 5)
            stats = index.stats
            assert stats.reply_bytes > 0
            assert stats.shard_reply_bytes is not None
            assert len(stats.shard_reply_bytes) == 3
            assert all(b is not None and b > 0
                       for b in stats.shard_reply_bytes)
            # Each shard ships three arrays; the supervisor accounts
            # exactly their byte sizes.
            assert stats.reply_bytes >= sum(stats.shard_reply_bytes)

            report = run_query_workload(index, queries, kind="knn", k=5)
            assert report.reply_bytes > 0
            assert report.shard_reply_bytes is not None
            assert report.results == tuple(tuple(r) for r in rows)

    def test_array_replies_beat_pickled_neighbor_lists(self, split_setup):
        """The CI bench-smoke claim, asserted in-suite as well."""
        words, queries = split_setup
        metric = LevenshteinDistance()
        with ShardedIndex(
            words, metric, LinearScan, n_shards=3, workers=2,
            resident=True,
        ) as index:
            index.reset_stats()
            index.knn_batch(queries, 10)
            shipped = index.stats.reply_bytes
            # What the pre-columnar wire shipped: each worker pickled
            # its shard's per-query Neighbor lists.
            pickled_baseline = sum(
                len(pickle.dumps(
                    shard.knn_batch(queries, 10), pickle.HIGHEST_PROTOCOL
                ))
                for shard in index.shards
            )
        assert shipped < pickled_baseline

    def test_serial_execution_reports_no_reply_bytes(self, split_setup):
        words, queries = split_setup
        with ShardedIndex(
            words, LevenshteinDistance(), LinearScan, n_shards=3,
            workers=None,
        ) as index:
            index.knn_batch(queries, 5)
            assert index.stats.reply_bytes == 0
            assert index.stats.shard_reply_bytes is None


class TestNeighborArraysUnit:
    """Direct unit coverage of the columnar container's invariants."""

    def test_round_trip_and_rows(self):
        lists = [
            [],
            [(0.5, 3), (0.5, 7), (1.0, 1)],
            [(0.0, 2)],
        ]
        rows = NeighborArrays.from_lists(
            [[_neighbor(d, i) for d, i in row] for row in lists]
        )
        _assert_well_formed(rows, 3)
        assert [
            [(n.distance, n.index) for n in rows.row_list(q)]
            for q in range(3)
        ] == lists
        assert rows.to_lists() == [
            [_neighbor(d, i) for d, i in row] for row in lists
        ]

    def test_sorted_rows_breaks_ties_by_index(self):
        rows = NeighborArrays(
            distances=np.array([2.0, 1.0, 1.0, 1.0]),
            indices=np.array([5, 9, 2, 7]),
            offsets=np.array([0, 3, 4]),
        ).sorted_rows()
        assert rows.indices.tolist() == [2, 9, 5, 7]
        assert rows.distances.tolist() == [1.0, 1.0, 2.0, 1.0]

    def test_trim_keeps_first_k_per_row(self):
        rows = NeighborArrays(
            distances=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
            indices=np.array([0, 1, 2, 3, 4]),
            offsets=np.array([0, 3, 5]),
        ).trim(2)
        assert rows.indices.tolist() == [0, 1, 3, 4]
        assert rows.offsets.tolist() == [0, 2, 4]

    def test_pickle_round_trip(self):
        rows = NeighborArrays(
            distances=np.array([1.0, 2.0]),
            indices=np.array([4, 1]),
            offsets=np.array([0, 2]),
        )
        clone = pickle.loads(pickle.dumps(rows))
        assert clone.to_lists() == rows.to_lists()


def _neighbor(distance, index):
    from repro.index.base import Neighbor

    return Neighbor(index=index, distance=float(distance))
