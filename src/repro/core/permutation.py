"""Distance permutations: definition, batch computation, codecs.

Given sites ``x_1 .. x_k``, the distance permutation ``Π_y`` of a point
``y`` is the unique permutation sorting the site indices into order of
increasing distance from ``y``, breaking ties by lower site index (the
paper's Section 1 definition).  We represent ``Π_y`` 0-based: ``perm[r]``
is the index of the ``(r+1)``-th closest site.

Tie-breaking is implemented with a *stable* argsort, which reproduces the
paper's rule exactly: among equal distances, the lower site index comes
first.  This matters for discrete metrics such as edit distance where ties
are pervasive.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence, Set, Tuple

import numpy as np

from repro.metrics.base import Metric

__all__ = [
    "distance_permutation",
    "distance_permutations",
    "permutations_from_distances",
    "count_distinct_permutations",
    "distinct_permutations",
    "inverse_permutation",
    "permutation_positions",
    "footrule_matrix",
    "footrule_matrix_batch",
    "permutation_rank",
    "permutation_unrank",
    "spearman_footrule",
    "spearman_rho",
    "kendall_tau",
    "is_permutation",
]


def permutations_from_distances(distances: np.ndarray) -> np.ndarray:
    """Return distance permutations for a matrix of site distances.

    ``distances`` has shape ``(n, k)``: row ``i`` holds the distances from
    point ``i`` to each of the ``k`` sites.  The result has the same shape
    and row ``i`` is ``Π`` for point ``i``.  Stable sorting implements the
    lower-index tie-break.
    """
    distances = np.asarray(distances)
    if distances.ndim == 1:
        distances = distances.reshape(1, -1)
    return np.argsort(distances, axis=1, kind="stable")


def distance_permutation(point: Any, sites: Sequence[Any], metric: Metric) -> Tuple[int, ...]:
    """Return ``Π_y`` for one point as a tuple of 0-based site indices."""
    distances = metric.to_sites([point], sites)[0]
    return tuple(int(i) for i in permutations_from_distances(distances)[0])


def distance_permutations(
    points: Sequence[Any], sites: Sequence[Any], metric: Metric
) -> np.ndarray:
    """Return the ``(n, k)`` matrix of distance permutations for ``points``."""
    distances = metric.to_sites(points, sites)
    return permutations_from_distances(distances)


def count_distinct_permutations(perms: np.ndarray) -> int:
    """Return the number of distinct rows in a permutation matrix.

    This is the paper's central measured quantity: the size of
    ``{Π_y | y in database}``.
    """
    perms = np.asarray(perms)
    if perms.ndim != 2:
        raise ValueError(f"expected (n, k) permutation matrix, got {perms.shape}")
    if perms.shape[0] == 0:
        return 0
    return int(np.unique(perms, axis=0).shape[0])


def distinct_permutations(perms: np.ndarray) -> Set[Tuple[int, ...]]:
    """Return the set of distinct permutations (as tuples) in a matrix."""
    perms = np.asarray(perms)
    return {tuple(int(v) for v in row) for row in np.unique(perms, axis=0)}


def is_permutation(perm: Sequence[int]) -> bool:
    """Return True if ``perm`` is a permutation of ``0..len(perm)-1``."""
    return sorted(perm) == list(range(len(perm)))


def inverse_permutation(perm: Sequence[int]) -> Tuple[int, ...]:
    """Return the inverse: ``inv[site] = rank`` of that site in ``perm``."""
    inv = [0] * len(perm)
    for rank, site in enumerate(perm):
        inv[site] = rank
    return tuple(inv)


def permutation_rank(perm: Sequence[int]) -> int:
    """Return the lexicographic rank (Lehmer code) of a permutation.

    The rank is in ``0 .. k!-1``; together with :func:`permutation_unrank`
    it gives the ``ceil(log2 k!)``-bit packing used as the storage baseline
    against which the paper's permutation-table encoding is compared.
    """
    perm = list(perm)
    k = len(perm)
    if not is_permutation(perm):
        raise ValueError(f"{perm!r} is not a permutation of 0..{k - 1}")
    rank = 0
    remaining = list(range(k))
    for i, value in enumerate(perm):
        position = remaining.index(value)
        rank += position * math.factorial(k - 1 - i)
        remaining.pop(position)
    return rank


def permutation_unrank(rank: int, k: int) -> Tuple[int, ...]:
    """Return the permutation of ``0..k-1`` with the given lexicographic rank."""
    if not 0 <= rank < math.factorial(k):
        raise ValueError(f"rank {rank} out of range for k={k}")
    remaining = list(range(k))
    perm = []
    for i in range(k):
        quotient = math.factorial(k - 1 - i)
        position, rank = divmod(rank, quotient)
        perm.append(remaining.pop(position))
    return tuple(perm)


def _positions(perm: Sequence[int]) -> np.ndarray:
    perm = np.asarray(perm)
    pos = np.empty_like(perm)
    pos[perm] = np.arange(len(perm))
    return pos


def spearman_footrule(perm_a: Sequence[int], perm_b: Sequence[int]) -> int:
    """Spearman footrule: total displacement of site positions.

    ``F = sum_site |pos_a(site) - pos_b(site)|``.  This is the permutation
    dissimilarity used by the permutation index of Chávez, Figueroa, and
    Navarro to order candidates by how similar their stored permutation is
    to the query's.
    """
    if len(perm_a) != len(perm_b):
        raise ValueError("permutations must have the same length")
    return int(np.abs(_positions(perm_a) - _positions(perm_b)).sum())


def spearman_rho(perm_a: Sequence[int], perm_b: Sequence[int]) -> float:
    """Spearman rho: Euclidean distance between position vectors."""
    if len(perm_a) != len(perm_b):
        raise ValueError("permutations must have the same length")
    diff = _positions(perm_a) - _positions(perm_b)
    return float(np.sqrt(np.sum(diff.astype(np.float64) ** 2)))


def kendall_tau(perm_a: Sequence[int], perm_b: Sequence[int]) -> int:
    """Kendall tau: number of discordant site pairs between two permutations."""
    if len(perm_a) != len(perm_b):
        raise ValueError("permutations must have the same length")
    pos_a = _positions(perm_a)
    pos_b = _positions(perm_b)
    k = len(pos_a)
    discordant = 0
    for i in range(k):
        for j in range(i + 1, k):
            if (pos_a[i] - pos_a[j]) * (pos_b[i] - pos_b[j]) < 0:
                discordant += 1
    return discordant


def permutation_positions(perms: np.ndarray) -> np.ndarray:
    """Row-wise inverse of a permutation matrix: ``pos[i, site] = rank``.

    This is the representation in which Spearman footrule is a plain
    elementwise computation; indexes cache it so batched footrule never
    re-inverts the stored permutations.
    """
    perms = np.asarray(perms)
    if perms.ndim == 1:
        perms = perms.reshape(1, -1)
    n, k = perms.shape
    positions = np.empty_like(perms)
    rows = np.arange(n)[:, None]
    positions[rows, perms] = np.arange(k)[None, :]
    return positions


def footrule_matrix(perms: np.ndarray, query_perm: Sequence[int]) -> np.ndarray:
    """Vectorized footrule of every row of ``perms`` against one permutation."""
    positions = permutation_positions(perms)
    query_positions = _positions(query_perm)[None, :]
    return np.abs(positions - query_positions).sum(axis=1)


#: Cap on the ``queries x points x sites`` intermediate of one batched
#: footrule chunk (~32 MB of int64 at the default).
_FOOTRULE_CHUNK_ELEMENTS = 4_194_304


def footrule_matrix_batch(
    perms: np.ndarray,
    query_perms: np.ndarray,
    *,
    positions: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Footrule of every stored permutation against every query permutation.

    Returns the ``(len(query_perms), len(perms))`` matrix whose entry
    ``(q, i)`` is ``spearman_footrule(perms[i], query_perms[q])``.  The
    computation is chunked over queries so the three-dimensional
    intermediate stays below ``_FOOTRULE_CHUNK_ELEMENTS`` entries; pass a
    precomputed ``positions = permutation_positions(perms)`` to skip
    re-inverting the stored permutations on every call.
    """
    if positions is None:
        positions = permutation_positions(perms)
    query_positions = permutation_positions(query_perms)
    n, k = positions.shape
    n_queries = query_positions.shape[0]
    # Ranks are < k, so a narrow integer dtype quarters the memory traffic
    # of the dominating broadcast; row sums stay < k^2, so int32 is a safe
    # accumulator exactly when the int16 ranks are.
    if k <= np.iinfo(np.int16).max:
        compact, accumulator = np.int16, np.int32
    else:
        compact, accumulator = np.int64, np.int64
    positions = positions.astype(compact, copy=False)
    query_positions = query_positions.astype(compact, copy=False)
    out = np.empty((n_queries, n), dtype=np.int64)
    rows = max(1, _FOOTRULE_CHUNK_ELEMENTS // max(1, n * k))
    for start in range(0, n_queries, rows):
        stop = min(start + rows, n_queries)
        block = np.abs(
            positions[None, :, :] - query_positions[start:stop, None, :]
        )
        out[start:stop] = block.sum(axis=2, dtype=accumulator)
    return out
