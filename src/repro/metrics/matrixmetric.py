"""Finite metric spaces given by explicit distance matrices.

Two uses: wrapping precomputed distances (the AESA setting), and — via
:func:`random_metric_space` — generating *arbitrary* finite metric spaces
for property-based testing.  Any nonnegative symmetric matrix becomes a
metric through its shortest-path closure (the largest metric pointwise
below it), so the test suite can fuzz the library over metric spaces with
no vector or string structure at all: the paper's general-metric setting,
where all ``k!`` permutations can occur.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.metrics.base import Metric

__all__ = ["MatrixMetric", "metric_closure", "random_metric_space"]


class MatrixMetric(Metric):
    """Metric over points ``0..n-1`` backed by an explicit matrix.

    The matrix is validated at construction: symmetric, zero diagonal,
    positive off-diagonal, triangle inequality (within ``tol``).
    """

    name = "matrix"

    def __init__(self, matrix: np.ndarray, tol: float = 1e-9):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"need a square matrix, got {matrix.shape}")
        if not np.allclose(matrix, matrix.T, atol=tol):
            raise ValueError("matrix is not symmetric")
        if np.any(np.abs(np.diag(matrix)) > tol):
            raise ValueError("diagonal must be zero")
        off_diagonal = matrix[~np.eye(matrix.shape[0], dtype=bool)]
        if off_diagonal.size and off_diagonal.min() <= 0:
            raise ValueError("off-diagonal distances must be positive")
        n = matrix.shape[0]
        # Triangle inequality via one round of min-plus against itself.
        for j in range(n):
            through_j = matrix[:, [j]] + matrix[[j], :]
            if np.any(matrix > through_j + tol):
                raise ValueError(
                    f"triangle inequality violated through point {j}"
                )
        self.matrix_data = matrix

    def distance(self, x: int, y: int) -> float:
        return float(self.matrix_data[x, y])

    def matrix(self, xs: Sequence[int], ys: Sequence[int]) -> np.ndarray:
        return self.matrix_data[np.ix_(list(xs), list(ys))]

    def pairwise(self, xs: Sequence[int]) -> np.ndarray:
        return self.matrix(xs, xs)

    def __len__(self) -> int:
        return self.matrix_data.shape[0]


def metric_closure(matrix: np.ndarray) -> np.ndarray:
    """Return the shortest-path (min-plus) closure of a distance matrix.

    Floyd–Warshall over a symmetric nonnegative matrix with zero
    diagonal; the result satisfies the triangle inequality and is the
    largest such matrix pointwise below the input.
    """
    closed = np.asarray(matrix, dtype=np.float64).copy()
    n = closed.shape[0]
    if closed.ndim != 2 or closed.shape[1] != n:
        raise ValueError(f"need a square matrix, got {closed.shape}")
    for j in range(n):
        np.minimum(closed, closed[:, [j]] + closed[[j], :], out=closed)
    return closed


def random_metric_space(
    n: int,
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
) -> MatrixMetric:
    """Generate an arbitrary finite metric space on ``n`` points.

    Random positive distances are symmetrized and closed under
    shortest paths, yielding a valid metric with no geometric structure —
    the paper's fully general setting.
    """
    if n < 2:
        raise ValueError("need at least two points")
    generator = rng if rng is not None else np.random.default_rng()
    raw = generator.random((n, n)) * scale + scale * 1e-3
    raw = 0.5 * (raw + raw.T)
    np.fill_diagonal(raw, 0.0)
    return MatrixMetric(metric_closure(raw))
