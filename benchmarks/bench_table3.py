"""Bench: regenerate Table 3 — permutation counts for uniform vectors.

The paper ran 10^6 points and 100 site draws per cell; the default here is
scaled (env ``REPRO_TABLE3_N`` / ``REPRO_TABLE3_RUNS`` restore any scale).
Shape criteria asserted:

- the d = 1 row equals ``C(k,2) + 1`` exactly: 7 / 29 / 67;
- counts saturate at ``k!`` when ``d >= k - 1`` (the 24s in the k = 4 column);
- mean <= max per cell; counts grow with d and k;
- the broad L1 >= L2 >= L∞ trend the paper reports, in aggregate.
"""

from __future__ import annotations

import math

from conftest import write_result

from repro.core.counting import euclidean_permutation_count, tree_permutation_bound
from repro.experiments.table3 import format_table3, table3_rows


def test_table3_full_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    assert len(rows) == 30  # 3 metrics x 10 dimensions

    for row in rows:
        for k in (4, 8, 12):
            assert row.mean_counts[k] <= row.max_counts[k]
            assert row.max_counts[k] <= math.factorial(k)
            if row.p == 2:
                assert row.max_counts[k] <= euclidean_permutation_count(row.d, k)

    # d = 1: every metric degenerates to the line; C(k,2)+1 exactly.
    for row in rows:
        if row.d == 1:
            for k in (4, 8, 12):
                assert row.max_counts[k] == tree_permutation_bound(k), (
                    row.metric_name, k,
                )

    # k = 4 saturates at 4! = 24 once d >= 3 (Theorem 6 regime).
    for row in rows:
        if row.d >= 3:
            assert row.max_counts[4] == 24, (row.metric_name, row.d)

    # Counts increase with dimension (within each metric and k).
    by_metric = {}
    for row in rows:
        by_metric.setdefault(row.metric_name, []).append(row)
    for metric_rows in by_metric.values():
        metric_rows.sort(key=lambda r: r.d)
        for k in (8, 12):
            means = [r.mean_counts[k] for r in metric_rows]
            # Allow small local noise; the overall trend must rise.
            assert means[-1] > means[0]
            assert means[5] > means[1]

    # Aggregate L1 >= L∞ trend over the unsaturated regime (d >= 3, k = 12):
    # the paper reports "a general downward trend in number of permutations
    # from L1 to L2 and from L2 to L∞".
    l1_total = sum(
        r.mean_counts[12] for r in by_metric["L1"] if r.d >= 3
    )
    l2_total = sum(
        r.mean_counts[12] for r in by_metric["L2"] if r.d >= 3
    )
    linf_total = sum(
        r.mean_counts[12] for r in by_metric["Linf"] if r.d >= 3
    )
    assert l1_total > linf_total
    assert l2_total > 0.8 * l1_total  # L2 close below L1

    write_result(results_dir, "table3", format_table3(rows))


def test_table3_single_cell_speed(benchmark):
    """Benchmark one census cell (L2, d = 4, k = 8) at reduced n."""
    rows = benchmark.pedantic(
        lambda: table3_rows(dims=(4,), ks=(8,), ps=(2.0,), n_points=10_000,
                            n_runs=3),
        rounds=1,
        iterations=1,
    )
    assert rows[0].max_counts[8] <= euclidean_permutation_count(4, 8)
