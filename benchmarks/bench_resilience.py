"""Bench: crash recovery and degraded-mode recall of the worker runtime.

Measures what failure actually costs under the supervised shard-resident
worker pool (:mod:`repro.parallel.workerpool`), with every failure
*injected* deterministically (:mod:`repro.parallel.faults`) so the
numbers are reproducible:

- **Recovery time** — a pinned worker is SIGKILL'd mid-batch under
  ``on_partial="raise"``; the fan-out must return answers identical to
  the unsharded index after the transparent respawn+retry.  Reported:
  the respawn cost itself and the end-to-end overhead versus the same
  batch unharmed, asserted against a 2-second budget.
- **Degraded-mode recall** — one of ``S`` shards is killed with
  ``on_partial="degrade"`` at each point of the committed
  recall-versus-budget curve (``BENCH_parallel.json``), quantifying the
  recall a partial answer from ``S-1`` shards gives up relative to the
  full sharded index at the same budget.
- **Deadline enforcement** — a worker stalls far past the deadline; the
  degraded answer must still return in roughly deadline time, not stall
  time.

The kill-injection path is armed in *every* mode, including ``--smoke``
(CI): recovery code that only runs when something breaks is recovery
code that does not work.

    PYTHONPATH=src python benchmarks/bench_resilience.py           # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from functools import partial
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.datasets.dictionaries import synthetic_dictionary  # noqa: E402
from repro.index import DistPermIndex, LinearScan, ShardedIndex  # noqa: E402
from repro.metrics import LevenshteinDistance  # noqa: E402
from repro.parallel.faults import FaultSpec  # noqa: E402
from repro.parallel.workerpool import QueryPolicy  # noqa: E402

SHARDS = 4
K = 10
#: Hard ceiling on kill-to-recovered time (the ISSUE acceptance budget).
RECOVERY_BUDGET_S = 2.0
#: Budgets matching the committed BENCH_parallel.json recall curve.
RECALL_BUDGETS = (100, 250, 500, 1000, 2000)
RECALL_BUDGETS_SMOKE = (25, 100)
STALL_DEADLINE_S = 0.5
#: A stall far longer than the deadline: only supervision can end it.
STALL_S = 30.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _repro_segments():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("repro-")}
    except OSError:
        return set()


def _mean_recall(results, exact_ids):
    hits = [
        len({neighbor.index for neighbor in row} & ids) / max(1, len(ids))
        for row, ids in zip(results, exact_ids)
    ]
    return round(float(np.mean(hits)), 4)


def _committed_sharded_curve():
    """budget -> recall_sharded from the committed BENCH_parallel.json."""
    path = REPO_ROOT / "BENCH_parallel.json"
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    for workload in report.get("workloads", ()):
        if workload.get("dataset") == "dictionary-en":
            return {
                point["budget"]: point["recall_sharded"]
                for point in workload.get("recall_curve", ())
            }
    return {}


def bench_recovery(words, metric, queries, expected):
    """SIGKILL one pinned worker mid-batch; answers must come back whole."""
    # Unharmed resident pass: the overhead baseline.
    with ShardedIndex(
        words, metric, LinearScan, n_shards=SHARDS, resident=True,
        policy=QueryPolicy(retries=1),
    ) as index:
        plain, _ = _timed(lambda: index.knn_batch(queries, K))  # pool warmup
        if plain != expected:
            raise AssertionError("resident answers diverge before any fault")
        plain, plain_s = _timed(lambda: index.knn_batch(queries, K))
    # Killed pass: warm the pool on request 1, SIGKILL shard 1 on the
    # timed request 2 — so the overhead is recovery, not pool spawn.
    with ShardedIndex(
        words, metric, LinearScan, n_shards=SHARDS, resident=True,
        policy=QueryPolicy(retries=1),
        faults=[FaultSpec("kill", shard=1, request=2)],
    ) as index:
        index.knn_batch(queries[:1], K)
        killed, killed_s = _timed(lambda: index.knn_batch(queries, K))
        pool = index._worker_pool
        respawns = pool.respawns
        respawn_s = pool.last_respawn_s
    if killed != expected:
        raise AssertionError(
            "answers after kill+respawn+retry diverge from the "
            "unsharded index"
        )
    if respawns != 1:
        raise AssertionError(f"expected exactly one respawn, saw {respawns}")
    overhead_s = max(0.0, killed_s - plain_s)
    if overhead_s > RECOVERY_BUDGET_S:
        raise AssertionError(
            f"recovery overhead {overhead_s:.2f}s exceeds the "
            f"{RECOVERY_BUDGET_S}s budget"
        )
    return {
        "n_queries": len(queries),
        "answers_identical": True,
        "plain_query_s": round(plain_s, 4),
        "killed_query_s": round(killed_s, 4),
        "recovery_overhead_s": round(overhead_s, 4),
        "respawn_s": round(respawn_s, 4),
        "budget_s": RECOVERY_BUDGET_S,
    }


def bench_degraded_recall(words, metric, queries, exact_ids, budgets, smoke):
    """Recall of S-1-shard degraded answers along the budget curve.

    Runs under the default (global footrule) budget split, where the
    killed shard's budget share is redistributed to the survivors by
    the merged ranking; ``committed_recall_sharded`` carries the
    committed *proportional*-split full-shard recall from
    ``BENCH_parallel.json`` for comparison across PRs.  The kill lands
    on the footrule phase (request 1 of each batch), so the dead shard
    is excluded from the allocation and exactly one worker generation
    burns per budget point.
    """
    inner = partial(DistPermIndex, n_sites=12, site_strategy="first")
    # The committed curve was measured at full size; comparing smoke's
    # tiny dataset against it would just mislead.
    committed = {} if smoke else _committed_sharded_curve()
    # One generation-g kill per budget point: every batch loses shard 0,
    # freshly respawned between batches.
    faults = [
        FaultSpec("kill", shard=0, request=1, generation=g)
        for g in range(len(budgets))
    ]
    curve = []
    with ShardedIndex(
        words, metric, inner, n_shards=SHARDS, resident=True,
        policy=QueryPolicy(retries=0, on_partial="degrade"),
    ) as full:
        with ShardedIndex(
            words, metric, inner, n_shards=SHARDS, resident=True,
            policy=QueryPolicy(retries=0, on_partial="degrade"),
            faults=faults,
        ) as degraded:
            for budget in budgets:
                recall_full = _mean_recall(
                    full.knn_approx_batch(queries, K, budget=budget),
                    exact_ids,
                )
                if full.stats.degraded:
                    raise AssertionError(
                        "un-faulted resident index reported degradation"
                    )
                answers = degraded.knn_approx_batch(
                    queries, K, budget=budget
                )
                if degraded.stats.shards_answered != SHARDS - 1:
                    raise AssertionError(
                        f"degraded pass answered from "
                        f"{degraded.stats.shards_answered} shards, "
                        f"expected {SHARDS - 1}"
                    )
                recall_degraded = _mean_recall(answers, exact_ids)
                point = {
                    "budget": budget,
                    "recall_full_shards": recall_full,
                    "recall_degraded": recall_degraded,
                    "degraded_fraction": round(
                        recall_degraded / recall_full, 4
                    ) if recall_full else None,
                }
                if budget in committed:
                    point["committed_recall_sharded"] = committed[budget]
                curve.append(point)
    return curve


def bench_deadline(words, metric, queries):
    """A stalled worker must cost ~deadline, not ~stall, under degrade."""
    with ShardedIndex(
        words, metric, LinearScan, n_shards=SHARDS, resident=True,
        policy=QueryPolicy(
            deadline=STALL_DEADLINE_S, retries=0, on_partial="degrade"
        ),
        faults=[FaultSpec("stall", shard=2, request=2, stall_s=STALL_S)],
    ) as index:
        index.knn_batch(queries[:1], K)  # request 1 warms the pool
        _, elapsed = _timed(lambda: index.knn_batch(queries, K))
        degraded = index.stats.degraded
        shards_answered = index.stats.shards_answered
    if not degraded or shards_answered != SHARDS - 1:
        raise AssertionError(
            "stalled shard was not reported as degraded "
            f"(degraded={degraded}, shards_answered={shards_answered})"
        )
    # Deadline + respawn slack, never anywhere near the stall.
    if elapsed > STALL_DEADLINE_S + RECOVERY_BUDGET_S:
        raise AssertionError(
            f"degraded answer took {elapsed:.2f}s against a "
            f"{STALL_DEADLINE_S}s deadline"
        )
    return {
        "deadline_s": STALL_DEADLINE_S,
        "stall_s": STALL_S,
        "degraded_latency_s": round(elapsed, 4),
        "shards_answered": shards_answered,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Worker-runtime crash-recovery and degradation benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI; the kill/stall injection paths still "
        "run and still assert, only the JSON write is skipped unless "
        "--output is given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="result JSON path "
        f"(default: {REPO_ROOT / 'BENCH_resilience.json'})",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(20080415)
    n = 400 if args.smoke else 10_000
    n_queries = 40 if args.smoke else 500
    budgets = RECALL_BUDGETS_SMOKE if args.smoke else RECALL_BUDGETS

    words = synthetic_dictionary("English", n, rng=rng)
    picks = rng.choice(n, size=n_queries, replace=False)
    queries = [words[int(i)] for i in picks]
    metric = LevenshteinDistance()
    baseline = LinearScan(words, metric)
    expected = baseline.knn_batch(queries, K)
    exact_ids = [{neighbor.index for neighbor in row} for row in expected]

    segments_before = _repro_segments()
    try:
        recovery = bench_recovery(words, metric, queries, expected)
        degraded_curve = bench_degraded_recall(
            words, metric, queries, exact_ids, budgets, args.smoke
        )
        deadline = bench_deadline(words, metric, queries)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    leaked = _repro_segments() - segments_before
    if leaked:
        print(f"FAIL: leaked shared-memory segments {sorted(leaked)}")
        return 1

    report = {
        "bench": "bench_resilience",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "dataset": "dictionary-en",
        "metric": "levenshtein",
        "n": n,
        "shards": SHARDS,
        "k": K,
        "recovery": recovery,
        "degraded_recall_curve": degraded_curve,
        "deadline": deadline,
    }
    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_resilience.json"
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    print(
        f"recovery: kill+respawn+retry overhead "
        f"{recovery['recovery_overhead_s']}s "
        f"(respawn {recovery['respawn_s']}s, budget "
        f"{RECOVERY_BUDGET_S}s), answers identical"
    )
    for point in degraded_curve:
        committed = point.get("committed_recall_sharded")
        suffix = f", committed full-shard {committed}" if committed else ""
        print(
            f"degraded recall@budget={point['budget']}: "
            f"{point['recall_degraded']} vs full-shards "
            f"{point['recall_full_shards']} "
            f"({point['degraded_fraction']} of full{suffix})"
        )
    print(
        f"deadline: stalled shard degraded in "
        f"{deadline['degraded_latency_s']}s against a "
        f"{STALL_DEADLINE_S}s deadline ({SHARDS - 1}/{SHARDS} shards)"
    )
    print("OK: recovery, degradation, and deadline paths all held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
