"""Random finite metric spaces + library-wide property tests.

The paper's general-metric claim — "for any k there always exists a
metric space ... such that every permutation ... has some point" — makes
arbitrary finite metric spaces the right fuzz substrate: no vector or
string structure, only the axioms.  These tests sweep the library's core
invariants over shortest-path-closure metrics.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting import tree_permutation_bound
from repro.core.permutation import (
    count_distinct_permutations,
    distance_permutations,
    is_permutation,
    kendall_tau,
    spearman_footrule,
)
from repro.index import AESA, LinearScan, PivotIndex
from repro.metrics import (
    MatrixMetric,
    check_metric_axioms,
    metric_closure,
    random_metric_space,
)

seeds = st.integers(0, 10_000)
sizes = st.integers(3, 24)


class TestMetricClosure:
    @given(seeds, sizes)
    @settings(max_examples=60, deadline=None)
    def test_closure_is_a_metric(self, seed, n):
        space = random_metric_space(n, np.random.default_rng(seed))
        violation = check_metric_axioms(space, list(range(n)))
        assert violation is None, str(violation)

    @given(seeds, sizes)
    @settings(max_examples=40, deadline=None)
    def test_closure_below_input(self, seed, n):
        rng = np.random.default_rng(seed)
        raw = rng.random((n, n)) + 1e-3
        raw = 0.5 * (raw + raw.T)
        np.fill_diagonal(raw, 0.0)
        closed = metric_closure(raw)
        assert np.all(closed <= raw + 1e-12)

    def test_closure_idempotent(self, rng):
        raw = rng.random((10, 10)) + 1e-3
        raw = 0.5 * (raw + raw.T)
        np.fill_diagonal(raw, 0.0)
        once = metric_closure(raw)
        twice = metric_closure(once)
        np.testing.assert_allclose(once, twice)

    def test_closure_rejects_non_square(self):
        with pytest.raises(ValueError):
            metric_closure(np.zeros((2, 3)))

    def test_matrix_metric_validates(self):
        with pytest.raises(ValueError):
            MatrixMetric(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
        with pytest.raises(ValueError):
            MatrixMetric(np.array([[1.0, 1.0], [1.0, 0.0]]))  # diagonal
        with pytest.raises(ValueError):
            # Triangle violation: d(0,2) = 10 > 1 + 1.
            MatrixMetric(
                np.array(
                    [[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]]
                )
            )

    def test_random_space_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_metric_space(1)


class TestPermutationInvariants:
    @given(seeds, st.integers(6, 20), st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_census_bounded_by_factorial(self, seed, n, k):
        rng = np.random.default_rng(seed)
        space = random_metric_space(n, rng)
        sites = [int(i) for i in rng.choice(n, size=k, replace=False)]
        perms = distance_permutations(list(range(n)), sites, space)
        assert all(is_permutation(list(row)) for row in perms)
        assert count_distinct_permutations(perms) <= math.factorial(k)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_site_itself_ranks_first(self, seed):
        """Every site's own distance permutation starts with a
        zero-distance site (itself, modulo duplicate-distance ties to a
        lower index)."""
        rng = np.random.default_rng(seed)
        n, k = 12, 4
        space = random_metric_space(n, rng)
        sites = [int(i) for i in rng.choice(n, size=k, replace=False)]
        perms = distance_permutations(sites, sites, space)
        for rank, site_index in enumerate(sites):
            first = perms[rank][0]
            assert space.distance(sites[first], site_index) == 0.0

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_relabeling_sites_permutes_census(self, seed):
        """Renaming sites must not change the census size."""
        rng = np.random.default_rng(seed)
        n, k = 15, 5
        space = random_metric_space(n, rng)
        sites = [int(i) for i in rng.choice(n, size=k, replace=False)]
        shuffled = list(sites)
        rng.shuffle(shuffled)
        points = list(range(n))
        count_a = count_distinct_permutations(
            distance_permutations(points, sites, space)
        )
        count_b = count_distinct_permutations(
            distance_permutations(points, shuffled, space)
        )
        assert count_a == count_b


class TestPermutationMetricAxioms:
    """Footrule and Kendall tau are metrics on the permutation group —
    the structural fact behind using them as index orderings."""

    @given(st.permutations(list(range(6))), st.permutations(list(range(6))),
           st.permutations(list(range(6))))
    @settings(max_examples=100, deadline=None)
    def test_footrule_triangle(self, a, b, c):
        assert spearman_footrule(a, c) <= (
            spearman_footrule(a, b) + spearman_footrule(b, c)
        )

    @given(st.permutations(list(range(6))), st.permutations(list(range(6))),
           st.permutations(list(range(6))))
    @settings(max_examples=100, deadline=None)
    def test_kendall_triangle(self, a, b, c):
        assert kendall_tau(a, c) <= kendall_tau(a, b) + kendall_tau(b, c)

    @given(st.permutations(list(range(7))))
    @settings(max_examples=50, deadline=None)
    def test_identity_of_indiscernibles(self, a):
        assert spearman_footrule(a, a) == 0
        assert kendall_tau(a, a) == 0


class TestIndexesOnRandomSpaces:
    """Exactness holds with no geometric structure at all."""

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_pivot_index_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = 30
        space = random_metric_space(n, rng)
        points = list(range(n))
        oracle = LinearScan(points, space)
        index = PivotIndex(points, space, n_pivots=4,
                           rng=np.random.default_rng(seed + 1))
        query = int(rng.integers(0, n))
        for radius in (0.1, 0.5, 2.0):
            got = [(x.index, round(x.distance, 12))
                   for x in index.range_query(query, radius)]
            want = [(x.index, round(x.distance, 12))
                    for x in oracle.range_query(query, radius)]
            assert got == want

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_aesa_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = 25
        space = random_metric_space(n, rng)
        points = list(range(n))
        oracle = LinearScan(points, space)
        index = AESA(points, space)
        query = int(rng.integers(0, n))
        for k in (1, 5):
            got = sorted(round(x.distance, 12)
                         for x in index.knn_query(query, k))
            want = sorted(round(x.distance, 12)
                          for x in oracle.knn_query(query, k))
            assert got == want

    def test_tree_bound_on_metric_closure_of_tree(self, rng):
        """A tree metric passed through MatrixMetric keeps Theorem 4."""
        from repro.metrics import random_tree_metric

        n, k = 40, 5
        tree = random_tree_metric(n, rng=rng)
        matrix = np.array(
            [[tree.distance(u, v) for v in range(n)] for u in range(n)]
        )
        space = MatrixMetric(matrix)
        sites = [int(i) for i in rng.choice(n, size=k, replace=False)]
        perms = distance_permutations(list(range(n)), sites, space)
        assert count_distinct_permutations(perms) <= tree_permutation_bound(k)
