"""Tests for the metric base classes and instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import CountingMetric, EuclideanDistance, LevenshteinDistance
from repro.metrics.base import Metric


class _Discrete(Metric):
    """Minimal metric implementing only the scalar method."""

    name = "discrete"

    def distance(self, x, y) -> float:
        return 0.0 if x == y else 1.0


class TestDefaultBatchMethods:
    def test_matrix_falls_back_to_loops(self):
        metric = _Discrete()
        out = metric.matrix(["a", "b"], ["a", "b", "c"])
        np.testing.assert_array_equal(
            out, [[0.0, 1.0, 1.0], [1.0, 0.0, 1.0]]
        )

    def test_pairwise_symmetric_zero_diagonal(self):
        metric = _Discrete()
        out = metric.pairwise(["a", "b", "c", "a"])
        np.testing.assert_allclose(out, out.T)
        assert out[0, 3] == 0.0
        assert out[0, 1] == 1.0
        np.testing.assert_array_equal(np.diag(out), np.zeros(4))

    def test_to_sites_shape(self):
        metric = _Discrete()
        out = metric.to_sites(list("abcd"), list("xy"))
        assert out.shape == (4, 2)

    def test_callable(self):
        assert _Discrete()("a", "b") == 1.0

    def test_batch_distances_falls_back_to_matrix(self):
        metric = _Discrete()
        out = metric.batch_distances(["a", "b"], ["a", "b", "c"])
        np.testing.assert_array_equal(
            out, metric.matrix(["a", "b"], ["a", "b", "c"])
        )

    def test_batch_distances_vectorized_matches_scalar(self, rng):
        metric = EuclideanDistance()
        queries = rng.random((5, 3))
        points = rng.random((7, 3))
        out = metric.batch_distances(queries, points)
        assert out.shape == (5, 7)
        for i, q in enumerate(queries):
            for j, p in enumerate(points):
                assert out[i, j] == pytest.approx(metric.distance(q, p))


class _VectorizedMatrix(Metric):
    """Metric overriding ``matrix`` but not ``pairwise``."""

    name = "vectorized"

    def __init__(self):
        self.matrix_calls = 0

    def distance(self, x, y) -> float:
        return abs(float(x) - float(y))

    def matrix(self, xs, ys) -> np.ndarray:
        self.matrix_calls += 1
        a = np.asarray(xs, dtype=np.float64)
        b = np.asarray(ys, dtype=np.float64)
        return np.abs(a[:, None] - b[None, :])


class TestPairwiseDelegation:
    def test_delegates_to_overridden_matrix(self):
        metric = _VectorizedMatrix()
        out = metric.pairwise([0.0, 1.0, 3.0])
        assert metric.matrix_calls == 1
        np.testing.assert_allclose(
            out, [[0, 1, 3], [1, 0, 2], [3, 2, 0]]
        )

    def test_delegated_pairwise_is_symmetric_with_zero_diagonal(self, rng):
        metric = _VectorizedMatrix()
        out = metric.pairwise(rng.random(10))
        np.testing.assert_array_equal(out, out.T)
        np.testing.assert_array_equal(np.diag(out), np.zeros(10))

    def test_loop_fallback_without_matrix_override(self):
        metric = _Discrete()
        out = metric.pairwise(["a", "b", "a"])
        np.testing.assert_array_equal(
            out, [[0, 1, 0], [1, 0, 1], [0, 1, 0]]
        )


class TestCountingMetric:
    def test_counts_scalar_calls(self):
        counter = CountingMetric(_Discrete())
        counter.distance("a", "b")
        counter.distance("a", "a")
        assert counter.count == 2

    def test_counts_matrix_entries(self):
        counter = CountingMetric(_Discrete())
        counter.matrix(list("abc"), list("xy"))
        assert counter.count == 6

    def test_counts_to_sites(self):
        counter = CountingMetric(_Discrete())
        counter.to_sites(list("abcd"), list("xyz"))
        assert counter.count == 12

    def test_counts_batch_distances(self):
        counter = CountingMetric(_Discrete())
        counter.batch_distances(list("ab"), list("xyz"))
        assert counter.count == 6

    def test_counts_pairwise_half_matrix(self):
        counter = CountingMetric(_Discrete())
        counter.pairwise(list("abcde"))
        assert counter.count == 10

    def test_reset(self):
        counter = CountingMetric(_Discrete())
        counter.distance("a", "b")
        counter.reset()
        assert counter.count == 0

    def test_values_pass_through(self, rng):
        inner = EuclideanDistance()
        counter = CountingMetric(inner)
        x, y = rng.random(3), rng.random(3)
        assert counter.distance(x, y) == inner.distance(x, y)

    def test_wraps_name(self):
        assert CountingMetric(LevenshteinDistance()).name == "levenshtein"

    def test_repr_shows_count(self):
        counter = CountingMetric(_Discrete())
        counter.distance("a", "b")
        assert "count=1" in repr(counter)
