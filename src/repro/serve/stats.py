"""The query service's observability plane.

:class:`ServerStats` is the single mutable record the server, batcher,
and clients-via-``STATS`` all read: counters for admitted / rejected /
degraded / errored requests, a per-window batch-size histogram (how well
micro-batching is actually coalescing — the whole point of the service),
the live admission-queue depth, coalesce latency (submit to engine
start, the time a request spends waiting for its window), and end-to-end
latency percentiles (p50/p99/p999) over a bounded ring of recent
requests.  ``snapshot()`` renders everything as one JSON-friendly dict;
the server ships it verbatim on the ``STATS`` op.

Latencies live in a fixed-size ring (default: the most recent 65536
requests), so a long-running server's stats cost constant memory and
percentiles reflect recent behavior rather than the whole lifetime.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ServerStats"]


class ServerStats:
    """Counters, histograms, and latency percentiles for one server."""

    def __init__(self, latency_window: int = 65536):
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self.started_at = time.monotonic()
        #: Requests admitted to the batching queue.
        self.requests_admitted = 0
        #: Requests refused with a 429-style REJECTED response.
        self.requests_rejected = 0
        #: Requests answered (OK responses sent, degraded included).
        self.requests_answered = 0
        #: Requests that raised in the engine (ERROR responses).
        self.requests_errored = 0
        #: OK responses flagged degraded (merged from < all shards).
        self.degraded_responses = 0
        #: Queries admitted (a request may carry several query rows).
        self.queries_admitted = 0
        self.queries_answered = 0
        #: Engine calls (one per coalesced group per window).
        self.batches_executed = 0
        #: Live depth of the admission queue, in queries.
        self.queue_depth = 0
        #: High-water mark of the admission queue, in queries.
        self.queue_depth_peak = 0
        #: Per-window batch-size histogram: batch size -> windows.
        self.batch_size_histogram: Dict[int, int] = {}
        #: Current adaptive batching window, seconds (batcher-owned).
        self.current_window_s = 0.0
        #: Result bytes shipped by the index engine since the server
        #: started (columnar reply payloads; for sharded indexes this is
        #: the worker-to-supervisor IPC volume — the memory/IPC pressure
        #: signal for out-of-core serving).
        self.reply_bytes = 0
        #: Per-shard reply bytes of the last sharded fan-out (None for
        #: unsharded engines; None entries mark shards that sent no
        #: reply in that fan-out).
        self.shard_reply_bytes: Optional[Tuple[Optional[int], ...]] = None
        self._coalesce_sum = 0.0
        self._coalesce_count = 0
        self._latencies = np.zeros(latency_window, dtype=np.float64)
        self._latency_pos = 0
        self._latency_count = 0

    # ------------------------------------------------------------------
    # Recording (called by the server / batcher).
    # ------------------------------------------------------------------

    def note_admitted(self, n_queries: int) -> None:
        self.requests_admitted += 1
        self.queries_admitted += n_queries

    def note_rejected(self) -> None:
        self.requests_rejected += 1

    def note_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def note_batch(self, batch_queries: int) -> None:
        """One engine call dispatched with ``batch_queries`` query rows."""
        self.batches_executed += 1
        self.batch_size_histogram[batch_queries] = (
            self.batch_size_histogram.get(batch_queries, 0) + 1
        )

    def note_coalesce_latency(self, seconds: float) -> None:
        """Submit-to-engine-start wait of one request."""
        self._coalesce_sum += seconds
        self._coalesce_count += 1

    def note_answered(
        self, n_queries: int, latency_s: float, degraded: bool
    ) -> None:
        self.requests_answered += 1
        self.queries_answered += n_queries
        if degraded:
            self.degraded_responses += 1
        self._latencies[self._latency_pos] = latency_s
        self._latency_pos = (self._latency_pos + 1) % self._latencies.shape[0]
        if self._latency_count < self._latencies.shape[0]:
            self._latency_count += 1

    def note_error(self) -> None:
        self.requests_errored += 1

    def note_reply_bytes(
        self,
        delta: int,
        shard_reply_bytes: Optional[Tuple[Optional[int], ...]] = None,
    ) -> None:
        """Engine reply volume of one batch (delta since the last call)."""
        self.reply_bytes += int(delta)
        if shard_reply_bytes is not None:
            self.shard_reply_bytes = tuple(shard_reply_bytes)

    # ------------------------------------------------------------------
    # Derived figures.
    # ------------------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at

    @property
    def qps(self) -> float:
        """Answered queries per second over the server's lifetime."""
        elapsed = self.uptime_s
        return self.queries_answered / elapsed if elapsed > 0 else 0.0

    @property
    def coalesce_latency_mean_s(self) -> float:
        if not self._coalesce_count:
            return 0.0
        return self._coalesce_sum / self._coalesce_count

    @property
    def mean_batch_size(self) -> float:
        if not self.batches_executed:
            return 0.0
        total = sum(
            size * count for size, count in self.batch_size_histogram.items()
        )
        return total / self.batches_executed

    def latency_percentiles(self) -> Optional[Dict[str, float]]:
        """p50/p99/p999 end-to-end seconds over the recent-request ring."""
        if not self._latency_count:
            return None
        window = self._latencies[: self._latency_count]
        p50, p99, p999 = np.percentile(window, (50.0, 99.0, 99.9))
        return {"p50_s": float(p50), "p99_s": float(p99),
                "p999_s": float(p999)}

    def snapshot(self) -> dict:
        """One JSON-friendly view of the whole plane (the STATS op body)."""
        return {
            "uptime_s": self.uptime_s,
            "requests_admitted": self.requests_admitted,
            "requests_rejected": self.requests_rejected,
            "requests_answered": self.requests_answered,
            "requests_errored": self.requests_errored,
            "degraded_responses": self.degraded_responses,
            "queries_admitted": self.queries_admitted,
            "queries_answered": self.queries_answered,
            "batches_executed": self.batches_executed,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_size_histogram.items())
            },
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "current_window_s": self.current_window_s,
            "coalesce_latency_mean_s": self.coalesce_latency_mean_s,
            "latency": self.latency_percentiles(),
            "qps": self.qps,
            "reply_bytes": self.reply_bytes,
            "shard_reply_bytes": (
                None
                if self.shard_reply_bytes is None
                else list(self.shard_reply_bytes)
            ),
        }

    def json(self) -> str:
        """The snapshot rendered as one JSON object (the STATS reply)."""
        return json.dumps(self.snapshot())
