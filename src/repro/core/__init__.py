"""Core contribution: distance permutations and how many can occur.

This package implements the paper's primary objects:

- :mod:`repro.core.permutation` — computing ``Π_y`` with the paper's
  tie-breaking rule, batch counting, permutation codecs and dissimilarities;
- :mod:`repro.core.counting` — the exact Euclidean count ``N_{d,2}(k)``
  (Theorem 7), cake numbers, and the L1/L∞/tree bounds;
- :mod:`repro.core.voronoi` — generalized Voronoi cell counting through
  bisector arrangements (Figures 1–4);
- :mod:`repro.core.constructions` — the all-``k!`` construction of
  Theorem 6 and the path construction of Corollary 5;
- :mod:`repro.core.storage` — index storage accounting (Corollary 8);
- :mod:`repro.core.dimension` — permutation-based dimensionality
  estimation and intrinsic dimensionality ``ρ`` (Section 5).
"""

from repro.core.arrangement import (
    arrangement_census,
    count_arrangement_cells,
    count_euclidean_cells_arrangement,
    euclidean_bisector_lines,
)
from repro.core.bitpack import PackedPermutationStore, pack_ids, unpack_ids
from repro.core.constructions import (
    corollary5_path_space,
    theorem6_sites,
    theorem6_witnesses,
)
from repro.core.entropy import (
    EntropyReport,
    empirical_entropy_bits,
    entropy_report,
)
from repro.core.estimate import (
    StreamingCensus,
    chao1_estimate,
    sampled_census_estimate,
)
from repro.core.counting import (
    cake_number,
    euclidean_leading_term,
    euclidean_permutation_count,
    euclidean_table,
    l1_hyperplanes_per_bisector,
    linf_hyperplanes_per_bisector,
    lp_permutation_bound,
    max_permutations,
    tree_permutation_bound,
)
from repro.core.dimension import (
    intrinsic_dimensionality,
    permutation_dimension,
    sample_distances,
)
from repro.core.permutation import (
    MAX_CODE_SITES,
    count_distinct_permutations,
    decode_permutations,
    distance_permutation,
    distance_permutations,
    distinct_permutations,
    encode_permutations,
    inverse_permutation,
    kendall_tau,
    permutation_code_dtype,
    permutation_rank,
    permutation_unrank,
    prefix_permutation_codes,
    spearman_footrule,
    spearman_rho,
)
from repro.core.storage import (
    StorageReport,
    bits_for_count,
    bits_full_permutation,
    bits_laesa_element,
    storage_report,
)
from repro.core.truncated import (
    count_distinct_prefixes,
    max_prefixes_unrestricted,
    prefix_census_curve,
    truncate_permutations,
)
from repro.core.voronoi import (
    bisector_sign,
    count_euclidean_cells_exact,
    count_order_cells_grid,
    realized_permutations_euclidean_exact,
    realized_permutations_grid,
)

__all__ = [
    "EntropyReport",
    "MAX_CODE_SITES",
    "PackedPermutationStore",
    "StorageReport",
    "StreamingCensus",
    "decode_permutations",
    "encode_permutations",
    "permutation_code_dtype",
    "prefix_permutation_codes",
    "chao1_estimate",
    "sampled_census_estimate",
    "arrangement_census",
    "bisector_sign",
    "bits_for_count",
    "bits_full_permutation",
    "bits_laesa_element",
    "cake_number",
    "count_arrangement_cells",
    "count_distinct_prefixes",
    "count_euclidean_cells_arrangement",
    "empirical_entropy_bits",
    "entropy_report",
    "euclidean_bisector_lines",
    "max_prefixes_unrestricted",
    "pack_ids",
    "prefix_census_curve",
    "truncate_permutations",
    "unpack_ids",
    "corollary5_path_space",
    "count_distinct_permutations",
    "count_euclidean_cells_exact",
    "count_order_cells_grid",
    "distance_permutation",
    "distance_permutations",
    "distinct_permutations",
    "euclidean_leading_term",
    "euclidean_permutation_count",
    "euclidean_table",
    "intrinsic_dimensionality",
    "inverse_permutation",
    "kendall_tau",
    "l1_hyperplanes_per_bisector",
    "linf_hyperplanes_per_bisector",
    "lp_permutation_bound",
    "max_permutations",
    "permutation_dimension",
    "permutation_rank",
    "permutation_unrank",
    "realized_permutations_euclidean_exact",
    "realized_permutations_grid",
    "sample_distances",
    "spearman_footrule",
    "spearman_rho",
    "storage_report",
    "theorem6_sites",
    "theorem6_witnesses",
    "tree_permutation_bound",
]
