"""Tests for the table-regeneration harnesses."""

from __future__ import annotations

import math

import pytest

from repro.core.counting import PAPER_TABLE1, tree_permutation_bound
from repro.experiments import (
    format_table,
    format_table1,
    format_table2,
    format_table3,
    generate_table1,
    permutation_count_trials,
    table2_rows,
    table3_rows,
    unique_permutation_count,
)
from repro.metrics import EuclideanDistance


class TestHarness:
    def test_unique_count(self, rng):
        points = rng.random((100, 2))
        sites = rng.random((4, 2))
        count = unique_permutation_count(points, sites, EuclideanDistance())
        assert 1 <= count <= 24

    def test_trials_mean_max_consistent(self, rng):
        points = rng.random((300, 2))
        result = permutation_count_trials(
            points, EuclideanDistance(), k=4, n_trials=6, rng=rng
        )
        assert len(result.counts) == 6
        assert result.min <= result.mean <= result.max

    def test_trials_reject_bad_k(self, rng):
        with pytest.raises(ValueError):
            permutation_count_trials(rng.random((10, 2)), EuclideanDistance(), k=1)
        with pytest.raises(ValueError):
            permutation_count_trials(rng.random((10, 2)), EuclideanDistance(), k=11)

    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line) for line in lines)) == 1


class TestTable1:
    def test_regenerates_paper_exactly(self):
        """Table 1 is pure combinatorics: all 110 entries must match."""
        assert generate_table1() == PAPER_TABLE1

    def test_format_contains_signature_values(self):
        text = format_table1()
        assert "392085" in text  # d=4, k=12
        assert "439084800" in text  # d=10, k=12

    def test_custom_ranges(self):
        table = generate_table1(dims=[2], ks=[3, 4])
        assert table == {2: {3: 6, 4: 18}}


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        # Two cheap databases keep this fast while exercising both string
        # and vector code paths.
        return table2_rows(names=["long", "nasa"], n=400, rho_pairs=300)

    def test_row_metadata(self, rows):
        assert [row.name for row in rows] == ["long", "nasa"]
        assert all(row.n == 400 for row in rows)
        assert all(row.paper_n > 0 for row in rows)

    def test_counts_monotone_in_k(self, rows):
        """Nested site prefixes can only add permutations."""
        for row in rows:
            counts = [row.counts[k] for k in sorted(row.counts)]
            assert counts == sorted(counts)

    def test_counts_bounded(self, rows):
        for row in rows:
            for k, count in row.counts.items():
                assert 1 <= count <= min(row.n, math.factorial(k))

    def test_rho_positive(self, rows):
        assert all(row.rho > 0 for row in rows)

    def test_format(self, rows):
        text = format_table2(rows)
        assert "long" in text and "nasa" in text
        assert "k=12" in text

    def test_deterministic(self):
        a = table2_rows(names=["nasa"], n=200, rho_pairs=100)
        b = table2_rows(names=["nasa"], n=200, rho_pairs=100)
        assert a[0].counts == b[0].counts


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_rows(
            dims=(1, 2), ks=(4, 8), n_points=3000, n_runs=3, seed=7
        )

    def test_row_grid(self, rows):
        assert len(rows) == 6  # 3 metrics x 2 dims
        assert {row.d for row in rows} == {1, 2}

    def test_d1_matches_tree_bound_exactly(self, rows):
        """On the line, N_{1,p}(k) = C(k,2) + 1 for every p; with 3000
        points the bound is hit and mean == max."""
        for row in rows:
            if row.d != 1:
                continue
            for k in (4, 8):
                assert row.max_counts[k] == tree_permutation_bound(k)

    def test_mean_at_most_max(self, rows):
        for row in rows:
            for k in row.mean_counts:
                assert row.mean_counts[k] <= row.max_counts[k]

    def test_k4_saturation_regime(self, rows):
        for row in rows:
            assert row.max_counts[4] <= 24

    def test_counts_grow_with_k(self, rows):
        for row in rows:
            assert row.mean_counts[4] <= row.mean_counts[8]

    def test_format(self, rows):
        text = format_table3(rows, ks=(4, 8))
        assert "Linf" in text
        assert "mean k=8" in text

    def test_metric_names(self, rows):
        assert {row.metric_name for row in rows} == {"L1", "L2", "Linf"}
