"""iAESA: AESA with permutation-based pivot selection (Figueroa et al.).

Identical storage and elimination rule to AESA, but the *next* candidate
to evaluate is chosen by the similarity (Spearman footrule) between the
candidate's distance permutation of the already-evaluated pivots and the
query's — the paper notes this pivot-selection idea is the part of iAESA
that would apply even to LAESA.  Fewer distance evaluations than AESA on
average; same exact results.
"""

from __future__ import annotations

import heapq
from typing import Any, List

import numpy as np

from repro.index.base import Index, Neighbor

__all__ = ["IAESA"]

#: Same float-safety slack as AESA: never trust an elimination bound to
#: the last ulp.  Slack only admits extra candidates; results stay exact.
_SAFETY = 1e-9


class IAESA(Index):
    """Improved AESA: permutation-similarity pivot selection."""

    def _build(self) -> None:
        self.matrix = self.metric.pairwise(self.points)

    def _select_next(
        self,
        alive: np.ndarray,
        lower: np.ndarray,
        used: List[int],
        query_distances: List[float],
    ) -> int:
        candidates = np.flatnonzero(alive)
        if len(used) < 2:
            # Not enough pivots for a meaningful permutation; fall back to
            # the AESA rule (smallest lower bound).
            return int(candidates[np.argmin(lower[candidates])])
        pivot_array = np.asarray(used)
        query_order = np.argsort(
            np.asarray(query_distances), kind="stable"
        )
        # Rank position of each used pivot in the query's permutation.
        query_positions = np.empty(len(used), dtype=np.int64)
        query_positions[query_order] = np.arange(len(used))
        candidate_distances = self.matrix[np.ix_(candidates, pivot_array)]
        candidate_orders = np.argsort(candidate_distances, axis=1, kind="stable")
        positions = np.empty_like(candidate_orders)
        rows = np.arange(len(candidates))[:, None]
        positions[rows, candidate_orders] = np.arange(len(used))[None, :]
        footrules = np.abs(positions - query_positions[None, :]).sum(axis=1)
        return int(candidates[np.argmin(footrules)])

    def _range_impl(self, query: Any, radius: float) -> List[Neighbor]:
        n = len(self.points)
        lower = np.zeros(n)
        alive = np.ones(n, dtype=bool)
        used: List[int] = []
        query_distances: List[float] = []
        results: List[Neighbor] = []
        threshold = radius + _SAFETY * (1.0 + radius)
        while alive.any():
            pivot = self._select_next(alive, lower, used, query_distances)
            alive[pivot] = False
            d = self.metric.distance(query, self.points[pivot])
            used.append(pivot)
            query_distances.append(d)
            if d <= radius:
                results.append(Neighbor(d, pivot))
            np.maximum(lower, np.abs(d - self.matrix[pivot]), out=lower)
            alive &= lower <= threshold
        return results

    def _knn_impl(self, query: Any, k: int) -> List[Neighbor]:
        n = len(self.points)
        lower = np.zeros(n)
        alive = np.ones(n, dtype=bool)
        used: List[int] = []
        query_distances: List[float] = []
        heap: List[tuple] = []
        while alive.any():
            pivot = self._select_next(alive, lower, used, query_distances)
            alive[pivot] = False
            d = self.metric.distance(query, self.points[pivot])
            used.append(pivot)
            query_distances.append(d)
            item = (-d, -pivot)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
            np.maximum(lower, np.abs(d - self.matrix[pivot]), out=lower)
            if len(heap) == k:
                kth = -heap[0][0]
                alive &= lower <= kth + _SAFETY * (1.0 + kth)
        return [Neighbor(-nd, -ni) for nd, ni in heap]

    def storage_floats(self) -> int:
        """Stored scalars: the full matrix, as for AESA."""
        n = len(self.points)
        return n * (n - 1) // 2
