"""Vectorized batch-query helpers shared by index implementations.

The batched query path works on full query-to-database distance matrices:
one :meth:`~repro.metrics.base.Metric.batch_distances` call per chunk of
queries instead of one Python-level metric call per (query, point) pair.
Top-k extraction uses ``np.argpartition`` with an explicit boundary-tie
repair so that results are *identical* to the single-query API, which
keeps the ``k`` smallest ``(distance, index)`` pairs lexicographically.

Chunking bounds peak memory: a chunk never materializes more than about
``_TARGET_CHUNK_ELEMENTS`` matrix entries, so a million-point database
queried with a hundred thousand queries still runs in bounded space.

The tree indexes (BK, VP, GH, List of Clusters) have a different shape of
batch work: a *sparse frontier* of surviving (query, vantage) pairs per
traversal level rather than a dense block.  :func:`frontier_distances`
evaluates such a frontier by grouping pairs on whichever side has fewer
distinct members — one ``batch_distances`` call per group, so vectorized
metric kernels fire while the evaluation count charged to
:class:`~repro.metrics.base.CountingMetric` stays exactly one per pair,
matching the scalar single-query traversal.  :class:`BatchKnnState`
carries the per-query bounded heaps and pruning radii such a traversal
maintains, with the same ``(-distance, -index)`` tie-breaking as
:func:`scan_knn`.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.base import Neighbor, NeighborArrays
from repro.metrics.base import Metric

__all__ = [
    "query_chunks",
    "scan_knn",
    "offer",
    "heap_radius",
    "heap_neighbors",
    "heaps_to_arrays",
    "smallest_k_indices",
    "top_k_arrays",
    "range_arrays",
    "rows_from_pairs",
    "exhaustive_knn_batch",
    "exhaustive_range_batch",
    "take_points",
    "frontier_distances",
    "BatchKnnState",
    "PRUNE_SAFETY",
]


def offer(heap: List[tuple], k: int, distance: float, index: int) -> None:
    """Offer one ``(distance, index)`` pair to a bounded max-heap.

    The heap keeps the ``k`` lexicographically smallest pairs as
    ``(-distance, -index)`` items, so ties break exactly as in the
    ``sorted(Neighbor)`` order of the public API regardless of offer
    order.
    """
    item = (-distance, -index)
    if len(heap) < k:
        heapq.heappush(heap, item)
    elif item > heap[0]:
        heapq.heapreplace(heap, item)


def heap_radius(heap: List[tuple], k: int) -> float:
    """Current pruning radius: the k-th best distance, or inf if unfilled."""
    return -heap[0][0] if len(heap) == k else float("inf")


def heap_neighbors(heap: List[tuple]) -> List[Neighbor]:
    """Convert a bounded max-heap back into ``Neighbor`` objects."""
    return [Neighbor(-nd, -ni) for nd, ni in heap]


def heaps_to_arrays(heaps: Sequence[List[tuple]]) -> NeighborArrays:
    """Convert per-query bounded max-heaps into CSR result columns."""
    counts = np.asarray([len(heap) for heap in heaps], dtype=np.int64)
    offsets = np.zeros(len(heaps) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    distances = np.empty(total, dtype=np.float64)
    indices = np.empty(total, dtype=np.int64)
    pos = 0
    for heap in heaps:
        for nd, ni in heap:
            distances[pos] = -nd
            indices[pos] = -ni
            pos += 1
    return NeighborArrays(distances, indices, offsets)


def scan_knn(
    metric: Metric,
    query: Any,
    points: Sequence[Any],
    k: int,
    indices: Optional[Sequence[int]] = None,
) -> List[Neighbor]:
    """Exact kNN of one query by scanning candidates with a bounded heap.

    The ``(-distance, -index)`` max-heap keeps the ``k`` lexicographically
    smallest ``(distance, index)`` pairs regardless of visit order, so
    ties break exactly as in the ``sorted(Neighbor)`` order of the public
    API.  ``indices`` restricts (and orders) the candidates scanned; the
    default scans the whole database.  This is the single home of the
    scalar scan idiom shared by the linear and permutation indexes.
    """
    heap: List[tuple] = []
    if indices is None:
        candidates = enumerate(points)
    else:
        candidates = ((int(i), points[int(i)]) for i in indices)
    for i, point in candidates:
        offer(heap, k, metric.distance(query, point), i)
    return heap_neighbors(heap)

#: Float-safety slack for tree prune bounds, as in AESA: build-time
#: distances now come from vectorized kernels whose last-ulp rounding can
#: differ from the scalar query-time formula, so comparisons against
#: stored radii get ``PRUNE_SAFETY * (1 + bound)`` of slack.  Slack only
#: ever admits extra candidates; results stay exact.
PRUNE_SAFETY = 1e-9

#: Upper bound on the number of distance-matrix entries materialized per
#: chunk of queries (~32 MB of float64 at the default).
_TARGET_CHUNK_ELEMENTS = 4_194_304


def query_chunks(
    n_queries: int, n_points: int
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` query ranges bounding matrix-chunk memory."""
    rows = max(1, _TARGET_CHUNK_ELEMENTS // max(1, n_points))
    for start in range(0, n_queries, rows):
        yield start, min(start + rows, n_queries)


def take_points(points: Sequence[Any], indices: np.ndarray) -> Sequence[Any]:
    """Gather ``points[indices]``, fancy-indexing arrays, looping otherwise."""
    if isinstance(points, np.ndarray):
        return points[indices]
    return [points[int(i)] for i in indices]


def smallest_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` lexicographically smallest ``(value, index)``.

    ``np.argpartition`` alone breaks ties at the k-th value arbitrarily;
    the repair step collects *every* entry at or below the partition
    boundary and resolves ties by lower index, matching the
    ``sorted(Neighbor)`` order of the single-query API exactly.  The
    result is sorted by ``(value, index)``.
    """
    n = values.shape[0]
    if k >= n:
        candidates = np.arange(n)
    else:
        part = np.argpartition(values, k - 1)[:k]
        boundary = values[part].max()
        candidates = np.flatnonzero(values <= boundary)
    order = np.lexsort((candidates, values[candidates]))[:k]
    return candidates[order]


def rows_from_pairs(
    n_queries: int,
    query_ids: np.ndarray,
    db_ids: np.ndarray,
    distances: np.ndarray,
) -> NeighborArrays:
    """Group flat ``(query, database, distance)`` triplets into CSR rows.

    The tree range traversals accumulate hits level by level as parallel
    arrays in no particular order; this groups them by query with one
    stable argsort.  Rows come back unsorted within — the public API's
    ``sorted_rows`` pass imposes the ``(distance, index)`` order.
    """
    query_ids = np.asarray(query_ids, dtype=np.int64)
    counts = np.bincount(query_ids, minlength=n_queries)
    offsets = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    order = np.argsort(query_ids, kind="stable")
    return NeighborArrays(
        np.asarray(distances, dtype=np.float64)[order],
        np.asarray(db_ids, dtype=np.int64)[order],
        offsets,
    )


def top_k_arrays(distances: np.ndarray, k: int) -> NeighborArrays:
    """Per-row exact top-k of a distance matrix, as sorted columns.

    The vectorized, all-rows-at-once counterpart of
    :func:`smallest_k_indices` with identical semantics: per row, the
    ``k`` lexicographically smallest ``(value, column)`` pairs sorted by
    ``(value, column)``, boundary ties resolved by lower column.
    """
    n_queries, n = distances.shape
    if n_queries == 0:
        return NeighborArrays.empty(0)
    if k >= n:
        rows = np.repeat(np.arange(n_queries, dtype=np.int64), n)
        cols = np.tile(np.arange(n, dtype=np.int64), n_queries)
        vals = distances.ravel()
    else:
        part = np.argpartition(distances, k - 1, axis=1)[:, :k]
        boundary = np.take_along_axis(distances, part, axis=1).max(axis=1)
        rows, cols = np.nonzero(distances <= boundary[:, None])
        vals = distances[rows, cols]
    order = np.lexsort((cols, vals, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    counts = np.bincount(rows, minlength=n_queries)
    rank = np.arange(rows.shape[0], dtype=np.int64)
    starts = np.zeros(n_queries, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    rank -= np.repeat(starts, counts)
    keep = rank < k
    offsets = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(np.minimum(counts, k), out=offsets[1:])
    return NeighborArrays(vals[keep], cols[keep], offsets)


def range_arrays(distances: np.ndarray, radius: float) -> NeighborArrays:
    """Per-row range hits (``distance <= radius``) of a matrix as columns."""
    n_queries = distances.shape[0]
    rows, cols = np.nonzero(distances <= radius)
    vals = distances[rows, cols]
    counts = np.bincount(rows, minlength=n_queries)
    offsets = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return NeighborArrays(vals, cols, offsets)


def exhaustive_knn_batch(
    metric: Metric, queries: Sequence[Any], points: Sequence[Any], k: int
) -> NeighborArrays:
    """Exact batched kNN by chunked exhaustive distance matrices."""
    parts: List[NeighborArrays] = []
    for start, stop in query_chunks(len(queries), len(points)):
        block = metric.batch_distances(queries[start:stop], points)
        parts.append(top_k_arrays(block, k))
    return NeighborArrays.concat(parts)


def exhaustive_range_batch(
    metric: Metric,
    queries: Sequence[Any],
    points: Sequence[Any],
    radius: float,
) -> NeighborArrays:
    """Exact batched range search by chunked exhaustive distance matrices.

    Uses :meth:`~repro.metrics.base.Metric.batch_distances_within`, whose
    contract fits range filtering exactly: every entry at or under the
    radius is the true distance, and entries beyond it only need to stay
    beyond it — which lets metrics with a banded kernel (Levenshtein)
    skip the full DP on pairs the query discards.
    """
    parts: List[NeighborArrays] = []
    for start, stop in query_chunks(len(queries), len(points)):
        block = metric.batch_distances_within(
            queries[start:stop], points, radius
        )
        parts.append(range_arrays(block, radius))
    return NeighborArrays.concat(parts)


def _groups(keys: np.ndarray) -> Iterator[Tuple[np.ndarray, int]]:
    """Yield ``(positions, key)`` for each distinct value of ``keys``."""
    if keys.shape[0] == 0:
        return
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    )
    stops = np.r_[starts[1:], keys.shape[0]]
    for start, stop in zip(starts, stops):
        yield order[start:stop], int(sorted_keys[start])


def frontier_distances(
    metric: Metric,
    queries: Sequence[Any],
    points: Sequence[Any],
    query_ids: np.ndarray,
    point_ids: np.ndarray,
) -> np.ndarray:
    """Distances for a sparse frontier of ``(query, point)`` pairs.

    ``query_ids[i]`` indexes ``queries`` and ``point_ids[i]`` indexes
    ``points``; the result holds ``d(queries[query_ids[i]],
    points[point_ids[i]])`` per pair.  Pairs are grouped on whichever
    side repeats more (early tree levels share a handful of vantage
    points across every query; deep fragmented levels share each query
    across many nodes) and every group becomes one
    :meth:`~repro.metrics.base.Metric.batch_distances` call, so the
    evaluation count stays exactly the number of pairs — the accounting
    of the scalar single-query traversal — while vectorized kernels do
    the work.
    """
    query_ids = np.asarray(query_ids, dtype=np.int64)
    point_ids = np.asarray(point_ids, dtype=np.int64)
    out = np.empty(query_ids.shape[0], dtype=np.float64)
    if out.shape[0] == 0:
        return out
    if np.unique(point_ids).shape[0] <= np.unique(query_ids).shape[0]:
        for positions, point in _groups(point_ids):
            block = metric.batch_distances(
                take_points(queries, query_ids[positions]),
                [points[point]],
            )
            out[positions] = block[:, 0]
    else:
        for positions, query in _groups(query_ids):
            block = metric.batch_distances(
                [queries[query]],
                take_points(points, point_ids[positions]),
            )
            out[positions] = block[0]
    return out


class BatchKnnState:
    """Per-query bounded heaps and pruning radii for batched kNN.

    A level-synchronous tree traversal offers every frontier distance of
    a level, then prunes the next level with the post-level radii.  The
    heaps are the same ``(-distance, -index)`` bounded max-heaps as
    :func:`scan_knn`, so final contents are independent of offer order
    and tie-break identically to the single-query path.
    """

    def __init__(self, n_queries: int, k: int):
        self.k = k
        self.heaps: List[List[tuple]] = [[] for _ in range(n_queries)]
        #: Per-query k-th best distance so far (inf while unfilled).
        self.radii = np.full(n_queries, np.inf)

    def offer_pairs(
        self,
        query_ids: np.ndarray,
        db_ids: np.ndarray,
        distances: np.ndarray,
    ) -> None:
        """Offer one ``(distance, database index)`` candidate per pair.

        Pairs whose distance already exceeds a full heap's k-th best are
        skipped wholesale (their offers would be no-ops); pairs tied with
        the boundary still go through the heap so index tie-breaking
        stays exact.
        """
        k = self.k
        query_ids = np.asarray(query_ids, dtype=np.int64)
        for positions, qi in _groups(query_ids):
            heap = self.heaps[qi]
            group_d = distances[positions]
            if len(heap) == k:
                positions = positions[group_d <= -heap[0][0]]
                group_d = distances[positions]
            group_i = db_ids[positions]
            for d, i in zip(group_d, group_i):
                offer(heap, k, float(d), int(i))
            if len(heap) == k:
                self.radii[qi] = -heap[0][0]

    def results(self) -> NeighborArrays:
        """The accumulated answers as CSR columns (rows unsorted)."""
        return heaps_to_arrays(self.heaps)
