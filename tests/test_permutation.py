"""Tests for distance permutations, codecs, and dissimilarities."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permutation import (
    count_distinct_permutations,
    distance_permutation,
    distance_permutations,
    distinct_permutations,
    footrule_matrix,
    footrule_matrix_batch,
    permutation_positions,
    inverse_permutation,
    is_permutation,
    kendall_tau,
    permutation_rank,
    permutation_unrank,
    permutations_from_distances,
    spearman_footrule,
    spearman_rho,
)
from repro.metrics import EuclideanDistance, LevenshteinDistance

permutation_strategy = st.integers(min_value=1, max_value=8).flatmap(
    lambda k: st.permutations(list(range(k)))
)


class TestDistancePermutation:
    def test_basic_ordering(self):
        distances = np.array([[3.0, 1.0, 2.0]])
        np.testing.assert_array_equal(
            permutations_from_distances(distances), [[1, 2, 0]]
        )

    def test_tie_break_lower_index_first(self):
        """The paper's rule: equal distances order by site index."""
        distances = np.array([[2.0, 1.0, 2.0, 1.0]])
        np.testing.assert_array_equal(
            permutations_from_distances(distances), [[1, 3, 0, 2]]
        )

    def test_all_ties(self):
        distances = np.array([[5.0, 5.0, 5.0]])
        np.testing.assert_array_equal(
            permutations_from_distances(distances), [[0, 1, 2]]
        )

    def test_1d_input_promoted(self):
        out = permutations_from_distances(np.array([2.0, 1.0]))
        assert out.shape == (1, 2)

    def test_single_point_api(self, rng):
        sites = rng.random((4, 3))
        point = rng.random(3)
        perm = distance_permutation(point, sites, EuclideanDistance())
        assert is_permutation(perm)
        distances = [EuclideanDistance().distance(point, s) for s in sites]
        assert list(perm) == sorted(range(4), key=lambda i: (distances[i], i))

    def test_batch_matches_single(self, rng):
        sites = rng.random((5, 2))
        points = rng.random((20, 2))
        metric = EuclideanDistance()
        batch = distance_permutations(points, sites, metric)
        for i, point in enumerate(points):
            assert tuple(batch[i]) == distance_permutation(point, sites, metric)

    def test_string_metric_ties(self):
        """Edit distance produces many ties; the stable rule must hold."""
        sites = ["aa", "bb", "ab"]
        perm = distance_permutation("ab", sites, LevenshteinDistance())
        # d = (1, 1, 0): site 2 first, then ties 0, 1 by index.
        assert perm == (2, 0, 1)

    def test_every_row_is_permutation(self, rng):
        sites = rng.random((6, 3))
        points = rng.random((50, 3))
        perms = distance_permutations(points, sites, EuclideanDistance())
        for row in perms:
            assert is_permutation(list(row))


class TestCounting:
    def test_count_distinct(self):
        perms = np.array([[0, 1], [1, 0], [0, 1]])
        assert count_distinct_permutations(perms) == 2

    def test_distinct_set(self):
        perms = np.array([[0, 1], [1, 0], [0, 1]])
        assert distinct_permutations(perms) == {(0, 1), (1, 0)}

    def test_empty(self):
        assert count_distinct_permutations(np.empty((0, 3), dtype=int)) == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            count_distinct_permutations(np.array([0, 1, 2]))

    def test_count_never_exceeds_factorial(self, rng, lp_metric):
        k = 4
        sites = rng.random((k, 2))
        points = rng.random((500, 2))
        perms = distance_permutations(points, sites, lp_metric)
        assert count_distinct_permutations(perms) <= math.factorial(k)


class TestCodecs:
    def test_rank_of_identity_is_zero(self):
        assert permutation_rank((0, 1, 2, 3)) == 0

    def test_rank_of_reverse_is_max(self):
        assert permutation_rank((3, 2, 1, 0)) == math.factorial(4) - 1

    def test_unrank_identity(self):
        assert permutation_unrank(0, 4) == (0, 1, 2, 3)

    def test_rank_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permutation_rank((0, 0, 1))

    def test_unrank_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            permutation_unrank(24, 4)

    def test_all_k4_roundtrip(self):
        seen = set()
        for rank in range(24):
            perm = permutation_unrank(rank, 4)
            assert permutation_rank(perm) == rank
            seen.add(perm)
        assert len(seen) == 24

    @given(permutation_strategy)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, perm):
        k = len(perm)
        rank = permutation_rank(perm)
        assert 0 <= rank < math.factorial(k)
        assert permutation_unrank(rank, k) == tuple(perm)

    def test_lexicographic_order(self):
        ranks = [permutation_rank(p) for p in itertools.permutations(range(4))]
        assert ranks == sorted(ranks)


class TestInverse:
    @given(permutation_strategy)
    @settings(max_examples=100, deadline=None)
    def test_inverse_property(self, perm):
        inv = inverse_permutation(perm)
        for rank, site in enumerate(perm):
            assert inv[site] == rank

    def test_involution(self):
        perm = (2, 0, 3, 1)
        assert inverse_permutation(inverse_permutation(perm)) == perm


class TestDissimilarities:
    def test_footrule_zero_iff_equal(self):
        assert spearman_footrule((0, 1, 2), (0, 1, 2)) == 0
        assert spearman_footrule((0, 1, 2), (0, 2, 1)) == 2

    def test_footrule_maximum_for_reverse(self):
        k = 6
        forward = tuple(range(k))
        backward = tuple(reversed(forward))
        assert spearman_footrule(forward, backward) == k * k // 2

    @given(permutation_strategy, st.randoms())
    @settings(max_examples=75, deadline=None)
    def test_footrule_symmetry(self, perm, rand):
        other = list(perm)
        rand.shuffle(other)
        assert spearman_footrule(perm, other) == spearman_footrule(other, perm)

    def test_footrule_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_footrule((0, 1), (0, 1, 2))

    def test_rho_reverse(self):
        assert spearman_rho((0, 1), (1, 0)) == pytest.approx(math.sqrt(2))

    def test_kendall_tau_counts_discordant_pairs(self):
        assert kendall_tau((0, 1, 2), (0, 1, 2)) == 0
        assert kendall_tau((0, 1, 2), (2, 1, 0)) == 3
        assert kendall_tau((0, 1, 2), (0, 2, 1)) == 1

    @given(permutation_strategy, st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_diaconis_graham_inequality(self, perm, rand):
        """Kendall tau and footrule satisfy K <= F <= 2K."""
        other = list(perm)
        rand.shuffle(other)
        tau = kendall_tau(perm, other)
        footrule = spearman_footrule(perm, other)
        assert tau <= footrule <= 2 * tau

    def test_footrule_matrix_matches_scalar(self, rng):
        perms = np.array([np.random.default_rng(i).permutation(5) for i in range(10)])
        query = tuple(np.random.default_rng(99).permutation(5))
        vectorized = footrule_matrix(perms, query)
        for i in range(10):
            assert vectorized[i] == spearman_footrule(tuple(perms[i]), query)

    def test_footrule_matrix_batch_matches_single(self):
        perms = np.array(
            [np.random.default_rng(i).permutation(6) for i in range(12)]
        )
        query_perms = np.array(
            [np.random.default_rng(100 + i).permutation(6) for i in range(7)]
        )
        batched = footrule_matrix_batch(perms, query_perms)
        assert batched.shape == (7, 12)
        for qi in range(7):
            np.testing.assert_array_equal(
                batched[qi], footrule_matrix(perms, query_perms[qi])
            )

    def test_footrule_matrix_batch_accepts_cached_positions(self):
        perms = np.array(
            [np.random.default_rng(i).permutation(4) for i in range(8)]
        )
        query_perms = np.array([np.random.default_rng(50).permutation(4)])
        cached = permutation_positions(perms)
        np.testing.assert_array_equal(
            footrule_matrix_batch(perms, query_perms, positions=cached),
            footrule_matrix_batch(perms, query_perms),
        )

    def test_permutation_positions_inverts_rows(self):
        perms = np.array([[2, 0, 1], [0, 1, 2]])
        positions = permutation_positions(perms)
        np.testing.assert_array_equal(positions, [[1, 2, 0], [0, 1, 2]])
        for row_perm, row_pos in zip(perms, positions):
            assert tuple(row_pos) == inverse_permutation(tuple(row_perm))
