"""Tests for the Theorem 6 and Corollary 5 constructions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.constructions import (
    corollary5_path_space,
    corollary5_sites,
    theorem6_sites,
    theorem6_witnesses,
)
from repro.core.counting import tree_permutation_bound
from repro.core.permutation import (
    count_distinct_permutations,
    distance_permutations,
)
from repro.metrics import MinkowskiMetric


class TestTheorem6Sites:
    def test_shape(self):
        for k in (2, 3, 5):
            sites = theorem6_sites(k)
            assert sites.shape == (k, k - 1)

    def test_basis(self):
        np.testing.assert_array_equal(theorem6_sites(2), [[-1.0], [1.0]])

    def test_nested_structure(self):
        """The first k-1 sites are the (k-1)-construction zero-extended."""
        eps = 0.25
        outer = theorem6_sites(4, eps)
        inner = theorem6_sites(3, eps / 4.0)
        np.testing.assert_allclose(outer[:3, :2], inner)
        np.testing.assert_array_equal(outer[:3, 2], np.zeros(3))

    def test_new_site_placement(self):
        eps = 0.25
        sites = theorem6_sites(4, eps)
        assert sites[3, -1] == pytest.approx(1.0 + eps / 4.0)
        np.testing.assert_array_equal(sites[3, :-1], np.zeros(2))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            theorem6_sites(1)
        with pytest.raises(ValueError):
            theorem6_sites(3, epsilon=0.7)
        with pytest.raises(ValueError):
            theorem6_sites(3, epsilon=0.0)

    def test_sites_near_unit_norm(self):
        """All sites lie within epsilon of the unit sphere (Fig. 6)."""
        sites = theorem6_sites(5, 0.25)
        norms = np.linalg.norm(sites, axis=1)
        assert np.all(np.abs(norms - 1.0) <= 0.25)


class TestTheorem6Witnesses:
    @pytest.mark.parametrize("p", [1, 2, math.inf])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_all_permutations_realized(self, p, k):
        witnesses = theorem6_witnesses(k, p=p)
        assert len(witnesses) == math.factorial(k)

    @pytest.mark.parametrize("p", [1, 2, math.inf])
    def test_witnesses_have_claimed_permutation(self, p):
        k = 4
        metric = MinkowskiMetric(p)
        sites = theorem6_sites(k)
        witnesses = theorem6_witnesses(k, p=p)
        for perm, point in witnesses.items():
            distances = [metric.distance(point, s) for s in sites]
            observed = tuple(
                sorted(range(k), key=lambda i: (distances[i], i))
            )
            assert observed == perm

    def test_witnesses_near_origin(self):
        """Proof condition (2): every witness is within epsilon of 0."""
        eps = 0.25
        witnesses = theorem6_witnesses(4, p=2, epsilon=eps)
        for point in witnesses.values():
            assert np.linalg.norm(point) < eps

    def test_witnesses_near_unit_distance_from_sites(self):
        """Proof condition (3): |1 - d(x_i, y)| < epsilon."""
        eps = 0.25
        k = 4
        sites = theorem6_sites(k, eps)
        metric = MinkowskiMetric(2)
        for point in theorem6_witnesses(k, p=2, epsilon=eps).values():
            for site in sites:
                assert abs(1.0 - metric.distance(point, site)) < eps

    def test_witness_distances_distinct(self):
        """Proof condition (4): no witness is equidistant from two sites."""
        k = 4
        sites = theorem6_sites(k)
        metric = MinkowskiMetric(2)
        for point in theorem6_witnesses(k, p=2).values():
            distances = sorted(metric.distance(point, s) for s in sites)
            gaps = np.diff(distances)
            assert np.all(gaps > 0)

    def test_k5_euclidean(self):
        assert len(theorem6_witnesses(5, p=2)) == 120


class TestCorollary5:
    def test_site_labels(self):
        assert corollary5_sites(2) == [0, 2]
        assert corollary5_sites(4) == [0, 2, 4, 8]
        assert corollary5_sites(6) == [0, 2, 4, 8, 16, 32]

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            corollary5_sites(1)

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7])
    def test_achieves_tree_bound_exactly(self, k):
        """The paper's construction makes Theorem 4 tight."""
        metric, sites = corollary5_path_space(k)
        perms = distance_permutations(metric.vertices, sites, metric)
        assert count_distinct_permutations(perms) == tree_permutation_bound(k)

    def test_path_length(self):
        metric, sites = corollary5_path_space(5)
        assert len(metric.vertices) == 2**4 + 1
        assert max(sites) == 16

    def test_midpoints_distinct(self):
        """The C(k,2) splitting midpoints of the proof are distinct."""
        k = 6
        labels = corollary5_sites(k)
        midpoints = set()
        for i in range(k):
            for j in range(i + 1, k):
                midpoints.add((labels[i] + labels[j]) // 2)
        assert len(midpoints) == k * (k - 1) // 2
