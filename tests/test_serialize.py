"""Tests for DistPermIndex serialization."""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.datasets import load_database
from repro.index import DistPermIndex, ShardedIndex
from repro.index.serialize import (
    PayloadCorruptError,
    load_distperm,
    load_sharded,
    read_shard_payload,
    save_distperm,
    save_sharded,
)
from repro.metrics import EuclideanDistance


@pytest.fixture
def built(rng):
    points = rng.random((400, 3))
    index = DistPermIndex(
        points, EuclideanDistance(), n_sites=7, rng=np.random.default_rng(1)
    )
    return points, index


class TestRoundTrip:
    def test_payload_roundtrip(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        assert loaded.site_indices == index.site_indices
        np.testing.assert_array_equal(loaded.permutations, index.permutations)
        assert loaded.unique_permutations() == index.unique_permutations()

    def test_loaded_index_answers_queries(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        query = rng.random(3)
        original = [(n.index, round(n.distance, 9))
                    for n in index.knn_query(query, 5)]
        reloaded = [(n.index, round(n.distance, 9))
                    for n in loaded.knn_query(query, 5)]
        assert original == reloaded

    def test_loaded_candidate_order_matches(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        query = rng.random(3)
        np.testing.assert_array_equal(
            index.candidate_order(query), loaded.candidate_order(query)
        )

    def test_string_database(self, tmp_path):
        database = load_database("English", n=300)
        index = DistPermIndex(
            database.points, database.metric, n_sites=5,
            rng=np.random.default_rng(2),
        )
        path = tmp_path / "dict.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, database.points, database.metric)
        assert loaded.unique_permutations() == index.unique_permutations()


class TestBatchedRoundTrip:
    """A loaded index must answer the *batched* API identically to the
    index it was saved from — the loader has to rebuild every derived
    cache ``_build`` creates, not just the payload arrays."""

    def _signatures(self, batches):
        return [
            [(n.index, round(n.distance, 9)) for n in batch]
            for batch in batches
        ]

    def test_knn_approx_batch_after_load(self, tmp_path, built, rng):
        """Regression: load_distperm used to skip ``_perm_positions``, so
        ``knn_approx_batch`` on any deserialized index crashed with
        AttributeError inside the footrule path."""
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        queries = rng.random((6, 3))
        fresh = index.knn_approx_batch(queries, 5, budget=60)
        reloaded = loaded.knn_approx_batch(queries, 5, budget=60)
        assert self._signatures(reloaded) == self._signatures(fresh)

    def test_full_batched_api_roundtrip(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        queries = rng.random((5, 3))
        assert self._signatures(
            loaded.range_batch(queries, 0.4)
        ) == self._signatures(index.range_batch(queries, 0.4))
        assert self._signatures(
            loaded.knn_batch(queries, 7)
        ) == self._signatures(index.knn_batch(queries, 7))
        assert self._signatures(
            loaded.knn_approx_batch(queries, 7, budget=100)
        ) == self._signatures(index.knn_approx_batch(queries, 7, budget=100))

    def test_string_database_batched_roundtrip(self, tmp_path):
        database = load_database("English", n=250)
        index = DistPermIndex(
            database.points, database.metric, n_sites=5,
            rng=np.random.default_rng(3),
        )
        path = tmp_path / "dict.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, database.points, database.metric)
        queries = [database.points[10], "hello", "zz"]
        assert self._signatures(
            loaded.knn_approx_batch(queries, 6, budget=40)
        ) == self._signatures(index.knn_approx_batch(queries, 6, budget=40))
        assert self._signatures(
            loaded.range_batch(queries, 2)
        ) == self._signatures(index.range_batch(queries, 2))

    def test_loaded_index_carries_build_attributes(self, tmp_path, built):
        """Every attribute ``__init__``/``_build`` sets must exist on a
        loaded index, so serialization can never again lag behind
        attributes added at build time."""
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        np.testing.assert_array_equal(
            loaded._perm_positions, index._perm_positions
        )
        assert loaded._perm_positions.dtype == index._perm_positions.dtype
        assert loaded._requested_sites == index.n_sites
        assert hasattr(loaded, "_site_strategy")
        assert hasattr(loaded, "_rng")


class TestValidation:
    def test_wrong_database_size_rejected(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        with pytest.raises(ValueError):
            load_distperm(path, points[:100], EuclideanDistance())

    def test_mismatched_database_rejected(self, tmp_path, built, rng):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        other = rng.random((400, 3))
        with pytest.raises(ValueError):
            load_distperm(path, other, EuclideanDistance())

    def test_build_cost_not_paid_on_load(self, tmp_path, built):
        """Loading must not recompute the n x k distance matrix."""
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        # Only the single probe permutation was computed (k distances),
        # and the counter was reset afterwards.
        assert loaded.metric.count == 0


def _rewrite_npz(path, mutate):
    """Load an ``.npz``, apply ``mutate(arrays)``, and save it back."""
    with np.load(path) as data:
        arrays = {key: data[key] for key in data.files}
    mutate(arrays)
    np.savez_compressed(path, **arrays)


class TestCorruptPayloads:
    """Damaged payloads must fail as :class:`PayloadCorruptError` naming
    the shard key and byte offset, not as a bare numpy shape error."""

    def test_truncated_stream(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)

        def truncate(arrays):
            arrays["codes_packed"] = arrays["codes_packed"][:-3]

        _rewrite_npz(path, truncate)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(path, points, EuclideanDistance())
        error = excinfo.value
        assert error.shard is None
        assert error.byte_offset > 0  # the short buffer's length
        assert "truncated" in str(error)
        assert "byte offset" in str(error)

    def test_bit_flipped_stream(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        # k=7: 13-bit codes against 7! = 5040, so an all-ones element
        # (8191) decodes out of range.  Smash a mid-stream byte run —
        # every element fully inside it becomes all-ones.
        def flip(arrays):
            packed = arrays["codes_packed"].copy()
            packed[160:166] = 0xFF
            arrays["codes_packed"] = packed

        _rewrite_npz(path, flip)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(path, points, EuclideanDistance())
        error = excinfo.value
        assert error.shard is None
        # The offset points into the smashed run (first bad element).
        assert 150 <= error.byte_offset <= 170
        assert "decodes outside" in str(error)

    def test_wrong_width_stream(self, tmp_path, built):
        points, index = built
        path = tmp_path / "index.npz"
        save_distperm(path, index)

        def widen(arrays):
            arrays["bit_width"] = np.int64(int(arrays["bit_width"]) + 3)

        _rewrite_npz(path, widen)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_distperm(path, points, EuclideanDistance())
        error = excinfo.value
        assert error.byte_offset == 0  # header-level damage
        assert "width" in str(error)

    def test_sharded_error_names_the_shard(self, tmp_path, built):
        points, _ = built
        factory = partial(DistPermIndex, n_sites=5, site_strategy="first")
        path = tmp_path / "sharded.npz"
        with ShardedIndex(
            points, EuclideanDistance(), factory, n_shards=3
        ) as index:
            save_sharded(path, index)

        def truncate_s1(arrays):
            arrays["s1_codes_packed"] = arrays["s1_codes_packed"][:-2]

        _rewrite_npz(path, truncate_s1)
        with pytest.raises(PayloadCorruptError) as excinfo:
            load_sharded(path, points, EuclideanDistance())
        assert excinfo.value.shard == "s1"
        assert "[s1," in str(excinfo.value)

    def test_read_shard_payload_roundtrip(self, tmp_path, built):
        points, _ = built
        factory = partial(DistPermIndex, n_sites=5, site_strategy="first")
        path = tmp_path / "sharded.npz"
        with ShardedIndex(
            points, EuclideanDistance(), factory, n_shards=2
        ) as index:
            save_sharded(path, index)
            saved_count = int(len(index.shards[1].points))
        payload = read_shard_payload(path, 1)
        assert int(payload["count"]) == saved_count
        with pytest.raises(ValueError, match="no shard s7"):
            read_shard_payload(path, 7)
