"""Property tests for the packed permutation-code engine.

Covers the codec round-trip across the uint64 window and the object
fallback, code-census equivalence with a tuple-of-rows reference across
metrics, prefix-code consistency with per-prefix recomputation,
shard-merge exactness over workers x shards grids, and serialization of
code-backed indexes down to the Corollary-8 payload size.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimate import StreamingCensus
from repro.core.permutation import (
    MAX_CODE_SITES,
    decode_permutations,
    distance_permutations,
    encode_permutations,
    permutation_code_dtype,
    permutation_rank,
    permutation_unrank,
    permutations_from_distances,
    prefix_permutation_codes,
)
from repro.core.storage import bits_full_permutation
from repro.datasets.dictionaries import synthetic_dictionary
from repro.index import DistPermIndex
from repro.index.serialize import load_distperm, save_distperm
from repro.metrics import (
    EuclideanDistance,
    HammingDistance,
    LevenshteinDistance,
)
from repro.parallel.census import sharded_census


def _random_perms(rng, n, k):
    return rng.permuted(np.tile(np.arange(k), (n, 1)), axis=1)


class TestCodecRoundTrip:
    @pytest.mark.parametrize("k", list(range(1, 21)))
    def test_uint64_window(self, rng, k):
        perms = _random_perms(rng, 64, k)
        codes = encode_permutations(perms)
        assert codes.dtype == np.uint64
        np.testing.assert_array_equal(decode_permutations(codes, k), perms)

    @pytest.mark.parametrize("k", [21, 25, 40])
    def test_object_fallback(self, rng, k):
        perms = _random_perms(rng, 16, k)
        codes = encode_permutations(perms)
        assert codes.dtype == object
        assert all(isinstance(code, int) for code in codes)
        np.testing.assert_array_equal(decode_permutations(codes, k), perms)

    def test_code_dtype_window(self):
        assert permutation_code_dtype(MAX_CODE_SITES) == np.dtype(np.uint64)
        assert permutation_code_dtype(MAX_CODE_SITES + 1) == np.dtype(object)

    def test_matches_scalar_rank(self, rng):
        for k in (1, 4, 9, 15):
            perms = _random_perms(rng, 8, k)
            codes = encode_permutations(perms)
            for row, code in zip(perms, codes):
                assert permutation_rank(tuple(int(v) for v in row)) == int(
                    code
                )

    def test_lexicographic_order_preserved(self):
        import itertools

        perms = np.array(list(itertools.permutations(range(5))))
        codes = encode_permutations(perms)
        assert list(codes) == list(range(math.factorial(5)))

    def test_empty_and_zero_width(self):
        assert encode_permutations(np.empty((0, 4), dtype=int)).shape == (0,)
        zero = encode_permutations(np.empty((3, 0), dtype=int))
        assert list(zero) == [0, 0, 0]
        assert decode_permutations(zero, 0).shape == (3, 0)

    def test_uint64_path_rejects_wide_k(self, rng):
        perms = _random_perms(rng, 4, MAX_CODE_SITES + 1)
        with pytest.raises(ValueError):
            encode_permutations(perms, dtype=np.uint64)
        with pytest.raises(ValueError):
            decode_permutations(
                np.arange(4, dtype=np.uint64), MAX_CODE_SITES + 1
            )

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode_permutations(np.array([24], dtype=np.uint64), 4)
        with pytest.raises(ValueError):
            decode_permutations(np.array([-1], dtype=np.int64), 4)
        with pytest.raises(ValueError):
            decode_permutations(
                np.array([math.factorial(25)], dtype=object), 25
            )

    def test_encode_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            encode_permutations(np.array([[0, 4]]))
        with pytest.raises(ValueError):
            encode_permutations(np.array([[-1, 0]]))

    @given(
        st.integers(min_value=1, max_value=12).flatmap(
            lambda k: st.lists(
                st.permutations(list(range(k))), min_size=1, max_size=20
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, perm_rows):
        perms = np.array(perm_rows)
        codes = encode_permutations(perms)
        np.testing.assert_array_equal(
            decode_permutations(codes, perms.shape[1]), perms
        )

    def test_scalar_big_k_arbitrary_precision(self):
        k = 30
        reverse = tuple(reversed(range(k)))
        rank = permutation_rank(reverse)
        assert rank == math.factorial(k) - 1
        assert permutation_unrank(rank, k) == reverse


class TestCodeCensusEquivalence:
    """Code-keyed censuses must be byte-identical (distinct, total,
    frequency-of-frequencies, chao1) to a tuple-of-rows reference."""

    def _reference(self, perms):
        counts = {}
        for row in perms:
            key = tuple(int(v) for v in row)
            counts[key] = counts.get(key, 0) + 1
        fof = {}
        for count in counts.values():
            fof[count] = fof.get(count, 0) + 1
        return len(counts), fof

    def _check(self, points, sites, metric):
        perms = distance_permutations(points, sites, metric)
        census = StreamingCensus()
        for start in range(0, len(perms), 257):  # uneven batches
            census.update(perms[start : start + 257])
        distinct, fof = self._reference(perms)
        assert census.distinct == distinct
        assert census.total == len(perms)
        assert census.frequency_of_frequencies() == fof
        from repro.core.estimate import chao1_estimate

        assert census.chao1() == chao1_estimate(fof, distinct)

    def test_euclidean(self, rng):
        points = rng.random((600, 3))
        self._check(points, points[:7], EuclideanDistance())

    def test_levenshtein(self, rng):
        words = synthetic_dictionary("English", 400, rng=rng)
        self._check(words, words[:6], LevenshteinDistance())

    def test_hamming(self, rng):
        strings = [
            "".join(rng.choice(list("ab"), size=6)) for _ in range(300)
        ]
        self._check(strings, strings[:5], HammingDistance())


class TestPrefixCodes:
    def test_matches_per_prefix_recompute(self, rng):
        """One-sort prefix codes count exactly like re-argsorting each
        prefix of the distance matrix (heavy ties included)."""
        distances = rng.random((400, 9))
        distances[rng.random((400, 9)) < 0.5] = 0.25  # pervasive ties
        full = permutations_from_distances(distances)
        by_width = prefix_permutation_codes(full, range(0, 10))
        for j in range(0, 10):
            reference = StreamingCensus()
            reference.update(permutations_from_distances(distances[:, :j]))
            census = StreamingCensus()
            census.update_codes(by_width[j], j, coding="prefix")
            assert census.distinct == reference.distinct
            assert (
                census.frequency_of_frequencies()
                == reference.frequency_of_frequencies()
            )

    def test_codes_injective_per_width(self, rng):
        distances = rng.random((300, 6))
        distances[rng.random((300, 6)) < 0.4] = 0.5
        full = permutations_from_distances(distances)
        codes = prefix_permutation_codes(full, [4])[4]
        restricted = permutations_from_distances(distances[:, :4])
        mapping = {}
        for row, code in zip(restricted, codes):
            key = tuple(int(v) for v in row)
            assert mapping.setdefault(key, int(code)) == int(code)
        assert len(set(mapping.values())) == len(mapping)

    def test_wide_prefix_object_path(self, rng):
        perms = _random_perms(rng, 40, 22)
        codes = prefix_permutation_codes(perms, [22])[22]
        assert codes.dtype == object
        assert len({int(c) for c in codes}) == len(
            {tuple(int(v) for v in row) for row in perms}
        )


class TestShardMergeGrid:
    @pytest.mark.parametrize("workers", [0, 2])
    @pytest.mark.parametrize("shards", [1, 3, 4])
    def test_equals_whole_database_census(self, rng, workers, shards):
        points = rng.random((240, 3))
        sites = [points[i] for i in range(6)]
        metric = EuclideanDistance()
        reference, _ = sharded_census(points, sites, metric, ks=[3, 6])
        censuses, _ = sharded_census(
            points, sites, metric, ks=[3, 6],
            workers=workers, shards=shards,
        )
        for k in (3, 6):
            assert censuses[k].distinct == reference[k].distinct
            assert censuses[k].total == reference[k].total
            assert (
                censuses[k].frequency_of_frequencies()
                == reference[k].frequency_of_frequencies()
            )
            assert censuses[k].chao1() == reference[k].chao1()


class TestCodeBackedSerialization:
    def test_roundtrip_code_state(self, tmp_path, rng):
        points = rng.random((300, 3))
        index = DistPermIndex(
            points, EuclideanDistance(), n_sites=6,
            rng=np.random.default_rng(3),
        )
        path = tmp_path / "index.npz"
        save_distperm(path, index)
        loaded = load_distperm(path, points, EuclideanDistance())
        np.testing.assert_array_equal(loaded.codes, index.codes)
        np.testing.assert_array_equal(loaded.table_codes, index.table_codes)
        np.testing.assert_array_equal(loaded.ids, index.ids)
        np.testing.assert_array_equal(loaded.permutations, index.permutations)

    def test_payload_hits_corollary8_bits(self, tmp_path, rng):
        """The k=12 on-disk per-element payload is the packed code array:
        n * ceil(lg 12!) bits, within one alignment word."""
        n, k = 500, 12
        points = rng.random((n, 4))
        index = DistPermIndex(
            points, EuclideanDistance(), n_sites=k,
            rng=np.random.default_rng(5),
        )
        path = tmp_path / "index.npz"
        save_distperm(path, index, version=2)
        bits = bits_full_permutation(k)
        assert bits == 29  # ceil(lg 12!)
        with np.load(path) as data:
            payload_bytes = data["codes_packed"].shape[0]
        assert math.ceil(n * bits / 8) <= payload_bytes
        assert payload_bytes <= math.ceil(n * bits / 8) + 8
